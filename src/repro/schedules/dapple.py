"""DAPPLE / 1F1B (Fan et al., 2020).

Closed-form warmup–steady–drain construction.  Device ``d`` (0-indexed)
admits ``min(B, P - d)`` warmup forwards, then strictly alternates one
backward with one forward, then drains the remaining backwards.  This
bounds live activations on device ``d`` to ``P - d`` micro-batches —
the uneven memory profile Sec. 2.2 discusses (device 0 peaks like
GPipe; the last device holds a single activation).
"""

from __future__ import annotations

from ..config import PipelineConfig
from ..errors import ConfigError
from ..types import OpKind
from .base import Schedule
from .placement import LinearPlacement


def dapple_schedule(config: PipelineConfig) -> Schedule:
    if config.scheme != "dapple":
        raise ConfigError(f"dapple_schedule got scheme {config.scheme!r}")
    p, b = config.num_devices, config.num_microbatches
    placement = LinearPlacement(p)
    sched = Schedule.empty("dapple", config, placement)
    for d in range(p):
        warmup = min(b, p - d)
        f_next = 0
        b_next = 0
        for _ in range(warmup):
            sched.append(d, sched.make_op(OpKind.FORWARD, f_next, d))
            f_next += 1
        while f_next < b:
            sched.append(d, sched.make_op(OpKind.BACKWARD, b_next, d))
            b_next += 1
            sched.append(d, sched.make_op(OpKind.FORWARD, f_next, d))
            f_next += 1
        while b_next < b:
            sched.append(d, sched.make_op(OpKind.BACKWARD, b_next, d))
            b_next += 1
    return sched
