"""Hanayo wave-like pipeline schedule (the paper's core contribution).

The model is folded into ``S = 2 * W * P`` stages laid out in a snake
(boustrophedon) placement, so each forward pass traces ``W`` "V" shapes
across the devices and every V-turn is local to one device.  Scheduling
uses the greedy engine with the wave policy: backwards first, forwards
chase the wave front, and each device keeps at most ``P`` micro-batches
open — giving DAPPLE-level activation memory with Chimera-level (and,
for W > 1, better) bubble ratios, without model replication.
"""

from __future__ import annotations

from ..config import CostConfig, PipelineConfig
from ..errors import ConfigError
from .base import Schedule
from .greedy import GreedyPolicy, greedy_order, wave_priority
from .placement import SnakePlacement


def hanayo_open_cap(num_devices: int, num_waves: int) -> int:
    """Default live-chunk cap per device (chunk-mode admission).

    ``2 * W * P`` chunk activations equal one pipeline-depth of full
    micro-batch activations — exactly the byte budget DAPPLE's warmup
    grants device 0 — while letting drained micro-batches that still
    park a cold chunk-0 activation coexist with newly admitted work
    (what keeps the wave's steady state dense for B > P).
    """
    return 2 * num_waves * num_devices


def hanayo_schedule(
    config: PipelineConfig,
    costs: CostConfig | None = None,
    open_cap: int | None = None,
) -> Schedule:
    """Generate a Hanayo schedule with ``config.num_waves`` waves.

    ``costs`` only shapes tie-breaking in the greedy order (the default
    unit costs reproduce the paper's figures); ``open_cap`` overrides
    the per-device memory discipline.
    """
    if config.scheme != "hanayo":
        raise ConfigError(f"hanayo_schedule got scheme {config.scheme!r}")
    placement = SnakePlacement(config.num_devices, config.num_waves)
    sched = Schedule.empty(f"hanayo-w{config.num_waves}", config, placement)
    cap = (hanayo_open_cap(config.num_devices, config.num_waves)
           if open_cap is None else open_cap)
    policy = GreedyPolicy(priority=wave_priority, open_cap=lambda d: cap,
                          cap_mode="chunks")
    return greedy_order(sched, policy, costs)
