"""GPipe: all forwards, then all backwards (Huang et al., 2018).

Closed-form construction: device ``d`` runs ``F(0..B-1)`` in micro-batch
order, then ``B(0..B-1)``.  All intermediate activations of every
micro-batch stay alive through the forward phase, which is the memory
weakness the paper's Fig. 3(a) illustrates.
"""

from __future__ import annotations

from ..config import PipelineConfig
from ..errors import ConfigError
from ..types import OpKind
from .base import Schedule
from .placement import LinearPlacement


def gpipe_schedule(config: PipelineConfig) -> Schedule:
    if config.scheme != "gpipe":
        raise ConfigError(f"gpipe_schedule got scheme {config.scheme!r}")
    placement = LinearPlacement(config.num_devices)
    sched = Schedule.empty("gpipe", config, placement)
    for d in range(config.num_devices):
        for m in range(config.num_microbatches):
            sched.append(d, sched.make_op(OpKind.FORWARD, m, d))
        for m in range(config.num_microbatches):
            sched.append(d, sched.make_op(OpKind.BACKWARD, m, d))
    return sched
