"""Schedule IR: per-device ordered op lists plus dataflow dependencies.

Every scheme generator in this package produces a :class:`Schedule`.
Downstream consumers — the validator, the action-list compiler, the
discrete-event simulator, and the real NumPy engine — all work from
this single representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import PipelineConfig
from ..errors import SchedulingError
from ..types import OpKind, ScheduleOp
from .placement import StagePlacement


@dataclass
class Schedule:
    """A complete synchronous pipeline schedule for one iteration.

    ``device_ops[d]`` is the execution order on device ``d``.  The order
    encodes the scheme's policy decisions (warmup depth, 1F1B
    interleaving, wave rolling); timing is assigned later by a cost
    model.
    """

    name: str
    config: PipelineConfig
    placement: StagePlacement
    device_ops: dict[int, list[ScheduleOp]]
    #: micro-batch → replica assignment (Chimera routes half of the
    #: micro-batches through each direction; others use replica 0).
    microbatch_replica: dict[int, int] = field(default_factory=dict)
    #: memoized op views — hot-path consumers (the program compiler,
    #: validation, memory replay) call ``all_ops``/``ops_for`` freely
    #: and must not pay a fresh list copy each time.  Invalidated by
    #: :meth:`append`; builders that grow ``device_ops`` directly do so
    #: before any reader runs (generators construct, then hand off).
    _all_ops: tuple[ScheduleOp, ...] | None = field(
        default=None, init=False, repr=False, compare=False)
    _ops_for: dict[int, tuple[ScheduleOp, ...]] = field(
        default_factory=dict, init=False, repr=False, compare=False)

    # -- shape -----------------------------------------------------------

    @property
    def num_devices(self) -> int:
        return self.config.num_devices

    @property
    def num_stages(self) -> int:
        return self.placement.num_stages

    @property
    def num_microbatches(self) -> int:
        return self.config.num_microbatches

    def replica_of(self, microbatch: int) -> int:
        return self.microbatch_replica.get(microbatch, 0)

    # -- op access -------------------------------------------------------

    def all_ops(self) -> tuple[ScheduleOp, ...]:
        """Every op, grouped by device in rank order (memoized view)."""
        if self._all_ops is None:
            self._all_ops = tuple(
                op for d in sorted(self.device_ops)
                for op in self.device_ops[d]
            )
        return self._all_ops

    def ops_for(self, device: int) -> tuple[ScheduleOp, ...]:
        """Device ``device``'s op order (memoized read-only view)."""
        ops = self._ops_for.get(device)
        if ops is None:
            ops = tuple(self.device_ops.get(device, ()))
            self._ops_for[device] = ops
        return ops

    def op_count(self) -> int:
        return sum(len(ops) for ops in self.device_ops.values())

    def find(self, kind: OpKind, microbatch: int, stage: int) -> ScheduleOp:
        for ops in self.device_ops.values():
            for op in ops:
                if (op.kind, op.microbatch, op.stage) == (kind, microbatch, stage):
                    return op
        raise SchedulingError(
            f"{self.name}: op {kind.short}(m{microbatch},s{stage}) not found"
        )

    # -- dataflow --------------------------------------------------------

    def dependencies(self, op: ScheduleOp) -> list[tuple[OpKind, int, int]]:
        """Dataflow predecessors of ``op`` as (kind, microbatch, stage).

        Forward ops wait on the upstream forward of the same
        micro-batch; backward ops wait on the downstream backward (or,
        at the last stage, on their own forward).  Every backward also
        needs its stage's saved activation, i.e. its own forward.
        """
        deps: list[tuple[OpKind, int, int]] = []
        last = self.num_stages - 1
        if op.kind is OpKind.FORWARD:
            if op.stage > 0:
                deps.append((OpKind.FORWARD, op.microbatch, op.stage - 1))
        else:
            deps.append((OpKind.FORWARD, op.microbatch, op.stage))
            if op.stage < last:
                deps.append((OpKind.BACKWARD, op.microbatch, op.stage + 1))
        return deps

    def expected_ops(self) -> set[tuple[OpKind, int, int]]:
        """The complete work set: every (m, s) once forward, once backward."""
        work: set[tuple[OpKind, int, int]] = set()
        for m in range(self.num_microbatches):
            for s in range(self.num_stages):
                work.add((OpKind.FORWARD, m, s))
                work.add((OpKind.BACKWARD, m, s))
        return work

    # -- construction helpers ---------------------------------------------

    def make_op(self, kind: OpKind, microbatch: int, stage: int,
                replica: int | None = None) -> ScheduleOp:
        """Build an op with device/chunk resolved through the placement."""
        r = self.replica_of(microbatch) if replica is None else replica
        device = self.placement.device_of(stage, r)
        chunk = self.placement.chunk_of(stage, r)
        return ScheduleOp(device=device, kind=kind, microbatch=microbatch,
                          stage=stage, chunk=chunk, replica=r)

    def append(self, device: int, op: ScheduleOp) -> None:
        if op.device != device:
            raise SchedulingError(
                f"{self.name}: op {op} appended to device {device}"
            )
        self.device_ops.setdefault(device, []).append(op)
        self._all_ops = None
        self._ops_for.clear()

    @classmethod
    def empty(cls, name: str, config: PipelineConfig,
              placement: StagePlacement) -> "Schedule":
        return cls(
            name=name,
            config=config,
            placement=placement,
            device_ops={d: [] for d in range(config.num_devices)},
        )

    def describe(self) -> str:
        return (f"{self.name}: P={self.num_devices} S={self.num_stages} "
                f"B={self.num_microbatches} ops={self.op_count()}")
