"""Stage-to-device placements.

The placement is what distinguishes the pipeline families:

* **linear** — stage ``s`` on device ``s`` (GPipe, DAPPLE, one direction
  of Chimera, GEMS).
* **snake** — boustrophedon: pass 0 runs down the devices, pass 1 back
  up, and so on.  This is the wave placement of Hanayo; wave *turns*
  land both stages on the same device, which is why turning is free
  (Sec. 3.2).
* **cyclic** — device ``d`` holds stages ``d, d+P, d+2P, ...``
  (Megatron interleaved 1F1B).
* **mirror** — two replicas of a linear placement in opposite
  directions (Chimera's bidirectional pipelines).
"""

from __future__ import annotations

from ..errors import ConfigError


class StagePlacement:
    """Maps (stage, replica) to a device and a local chunk index."""

    def __init__(self, name: str, num_stages: int, num_devices: int,
                 num_replicas: int = 1):
        if num_stages < 1 or num_devices < 1:
            raise ConfigError("placement needs >=1 stage and device")
        self.name = name
        self.num_stages = num_stages
        self.num_devices = num_devices
        self.num_replicas = num_replicas
        # chunk index = position of (stage, replica) in the device's list
        self._stages_on: dict[int, list[tuple[int, int]]] = {
            d: [] for d in range(num_devices)
        }
        for replica in range(num_replicas):
            for stage in range(num_stages):
                d = self.device_of(stage, replica)
                self._stages_on[d].append((stage, replica))
        self._chunk_of: dict[tuple[int, int], int] = {}
        for d, pairs in self._stages_on.items():
            for i, pair in enumerate(pairs):
                self._chunk_of[pair] = i

    # Subclasses override this single method.
    def device_of(self, stage: int, replica: int = 0) -> int:
        raise NotImplementedError

    def stages_on(self, device: int) -> list[tuple[int, int]]:
        """(stage, replica) pairs resident on ``device``, chunk order."""
        return list(self._stages_on[device])

    def chunk_of(self, stage: int, replica: int = 0) -> int:
        return self._chunk_of[(stage, replica)]

    def chunks_on(self, device: int) -> int:
        return len(self._stages_on[device])

    def is_local_boundary(self, stage: int, replica: int = 0) -> bool:
        """True if the stage→stage+1 hop stays on one device (wave turn)."""
        if stage < 0 or stage >= self.num_stages - 1:
            return False
        return self.device_of(stage, replica) == self.device_of(stage + 1, replica)

    def _check_stage(self, stage: int, replica: int) -> None:
        if not (0 <= stage < self.num_stages):
            raise ConfigError(f"stage {stage} outside [0, {self.num_stages})")
        if not (0 <= replica < self.num_replicas):
            raise ConfigError(f"replica {replica} outside [0, {self.num_replicas})")


class LinearPlacement(StagePlacement):
    """Stage ``s`` on device ``s``; requires S == P."""

    def __init__(self, num_devices: int):
        super().__init__("linear", num_devices, num_devices)

    def device_of(self, stage: int, replica: int = 0) -> int:
        self._check_stage(stage, replica)
        return stage


class SnakePlacement(StagePlacement):
    """Boustrophedon wave placement: S = 2 * W * P stages.

    Pass ``k = stage // P`` alternates direction: even passes map
    offset ``j = stage % P`` to device ``j``; odd passes to ``P-1-j``.
    Device ``d`` therefore holds ``2W`` chunks and every V-turn of the
    wave is local to one device.
    """

    def __init__(self, num_devices: int, num_waves: int):
        if num_waves < 1:
            raise ConfigError("num_waves must be >= 1")
        self.num_waves = num_waves
        super().__init__("snake", 2 * num_waves * num_devices, num_devices)

    def device_of(self, stage: int, replica: int = 0) -> int:
        self._check_stage(stage, replica)
        p = self.num_devices
        k, j = divmod(stage, p)
        return j if k % 2 == 0 else p - 1 - j


class CyclicPlacement(StagePlacement):
    """Megatron interleaved placement: device d holds d, d+P, d+2P..."""

    def __init__(self, num_devices: int, chunks: int):
        if chunks < 1:
            raise ConfigError("chunks must be >= 1")
        self.chunks = chunks
        super().__init__("cyclic", chunks * num_devices, num_devices)

    def device_of(self, stage: int, replica: int = 0) -> int:
        self._check_stage(stage, replica)
        return stage % self.num_devices


class MirrorPlacement(StagePlacement):
    """Chimera's two opposing linear pipelines over one device set.

    Replica 0 flows down (stage s on device s); replica 1 flows up
    (stage s on device P-1-s).  Each device holds one chunk per replica.
    """

    def __init__(self, num_devices: int):
        super().__init__("mirror", num_devices, num_devices, num_replicas=2)

    def device_of(self, stage: int, replica: int = 0) -> int:
        self._check_stage(stage, replica)
        if replica == 0:
            return stage
        return self.num_devices - 1 - stage
