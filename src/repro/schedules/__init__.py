"""Pipeline schedule generators and the schedule IR."""

from .async_1f1b import async_1f1b_schedule, max_staleness, weight_versions
from .base import Schedule
from .chimera import chimera_schedule
from .dapple import dapple_schedule
from .factory import build_schedule
from .gems import gems_schedule
from .gpipe import gpipe_schedule
from .greedy import GreedyPolicy, fifo_priority, greedy_order, wave_priority
from .hanayo import hanayo_open_cap, hanayo_schedule
from .interleaved import interleaved_schedule
from .placement import (
    CyclicPlacement,
    LinearPlacement,
    MirrorPlacement,
    SnakePlacement,
    StagePlacement,
)
from .transform import chimera_to_wave, chimera_wave_schedule, transformed_from
from .validation import (
    check_completeness,
    check_executable,
    check_placement,
    validate,
)

__all__ = [
    "CyclicPlacement",
    "GreedyPolicy",
    "LinearPlacement",
    "MirrorPlacement",
    "Schedule",
    "SnakePlacement",
    "StagePlacement",
    "async_1f1b_schedule",
    "build_schedule",
    "check_completeness",
    "check_executable",
    "check_placement",
    "chimera_schedule",
    "chimera_to_wave",
    "chimera_wave_schedule",
    "dapple_schedule",
    "fifo_priority",
    "gems_schedule",
    "gpipe_schedule",
    "greedy_order",
    "hanayo_open_cap",
    "hanayo_schedule",
    "interleaved_schedule",
    "max_staleness",
    "transformed_from",
    "validate",
    "wave_priority",
    "weight_versions",
]
