"""Single entry point mapping a :class:`PipelineConfig` to its schedule."""

from __future__ import annotations

from ..config import CostConfig, PipelineConfig
from ..errors import ConfigError
from .async_1f1b import async_1f1b_schedule
from .base import Schedule
from .chimera import chimera_schedule
from .dapple import dapple_schedule
from .gems import gems_schedule
from .gpipe import gpipe_schedule
from .hanayo import hanayo_schedule
from .interleaved import interleaved_schedule
from .transform import chimera_wave_schedule


def build_schedule(config: PipelineConfig,
                   costs: CostConfig | None = None) -> Schedule:
    """Construct the schedule for ``config.scheme``.

    ``costs`` influences greedy tie-breaking only; constructive schemes
    (gpipe, dapple, async-1f1b) ignore it.
    """
    scheme = config.scheme
    if scheme == "gpipe":
        return gpipe_schedule(config)
    if scheme == "dapple":
        return dapple_schedule(config)
    if scheme == "interleaved":
        return interleaved_schedule(config, costs)
    if scheme == "gems":
        return gems_schedule(config, costs)
    if scheme == "chimera":
        return chimera_schedule(config, costs)
    if scheme == "chimera-wave":
        return chimera_wave_schedule(config)
    if scheme == "hanayo":
        return hanayo_schedule(config, costs)
    if scheme == "async-1f1b":
        return async_1f1b_schedule(config)
    raise ConfigError(f"no generator for scheme {scheme!r}")
