"""Dependency-driven greedy list scheduler.

This is the generator behind the wave-family schedules (Hanayo,
Chimera, interleaved 1F1B, GEMS).  It simulates a work-conserving
executor: whenever a device is idle it starts the highest-priority op
whose dataflow inputs have arrived, subject to a per-device cap on
*open micro-batches* (a micro-batch is open on a device from its first
forward there until its last backward there starts).  The cap is the
memory discipline — it is what turns an eager GPipe-shaped execution
into 1F1B- and wave-shaped executions — and the priority function is
the scheme's policy.

The open-micro-batch cap is deadlock-free by construction: ops of an
already-open micro-batch are never blocked, so the leading micro-batch
always reaches the last stage and unlocks the backward chain.

The same engine doubles as an order-*verifier*: ``dapple`` built
constructively and ``dapple`` built greedily must coincide, which the
test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..config import CostConfig, PipelineConfig
from ..errors import SchedulingError
from ..types import OpKind, ScheduleOp
from .base import Schedule
from .placement import StagePlacement

#: Priority callables map an op to a sortable tuple; lower runs first.
Priority = Callable[[ScheduleOp], tuple]


def wave_priority(op: ScheduleOp) -> tuple:
    """Backward-first; forwards chase the wave front (highest stage).

    Backwards drain in micro-batch FIFO order, freeing activations of
    the oldest micro-batch first.  Among forwards, the highest global
    stage wins so the leading micro-batch keeps rolling through the
    wave turns instead of the device farming new micro-batches.
    """
    if op.kind is OpKind.BACKWARD:
        return (0, op.microbatch, op.stage)
    return (1, -op.stage, op.microbatch)


def fifo_priority(op: ScheduleOp) -> tuple:
    """Backward-first, micro-batch FIFO everywhere (classic 1F1B)."""
    if op.kind is OpKind.BACKWARD:
        return (0, op.microbatch, op.stage)
    return (1, op.microbatch, -op.stage)


@dataclass
class GreedyPolicy:
    """Policy knobs for the greedy engine.

    ``open_cap(device)`` bounds what a device may *admit*, per pipeline
    replica — bidirectional schemes (Chimera, GEMS) admit independently
    per direction, otherwise one direction's admissions would lock the
    other's wave front out of the device and deadlock the backward
    chain.  Two accounting modes:

    * ``cap_mode="microbatches"`` — classic 1F1B discipline: at most N
      micro-batches simultaneously open on the device.  Exact for
      single-chunk placements (DAPPLE's warmup depth).
    * ``cap_mode="chunks"`` — at most N live chunk activations (forward
      run, backward not yet started).  This is the byte-accurate
      discipline wave placements need: a drained micro-batch parking
      one cold chunk-0 activation should not block admitting new work.
      Every already-open micro-batch is exempt from the cap.
    * ``cap_mode="chunks-strict"`` — like ``chunks`` but only the
      *oldest* open micro-batch is exempt.  This delays late-comer
      forwards the way the paper's hand schedules do, trading a little
      idle time for a strictly lower activation peak (what lets Hanayo
      fit where DAPPLE OOMs in the strong-scaling figure).

    All modes stay deadlock-free: the exempted (oldest/wave-front)
    micro-batch always reaches the last stage and unlocks the backward
    chain, which frees budget.
    """

    priority: Priority = wave_priority
    #: device -> admission budget per replica (None = unbounded)
    open_cap: Callable[[int], int] | None = None
    cap_mode: str = "microbatches"
    #: device -> hard live-chunk ceiling (chunk modes only): above it,
    #: only the oldest open micro-batch may run forwards.  Bounds the
    #: open-micro-batch exemption's overshoot so the wave's peak stays
    #: below DAPPLE's without starving the steady state.
    hard_cap: Callable[[int], int] | None = None

    def __post_init__(self) -> None:
        if self.cap_mode not in ("microbatches", "chunks", "chunks-strict"):
            raise SchedulingError(f"unknown cap_mode {self.cap_mode!r}")

    def cap_for(self, device: int) -> int | None:
        return None if self.open_cap is None else self.open_cap(device)


@dataclass
class _DeviceState:
    free_at: float = 0.0
    #: open micro-batches keyed by replica
    open_mbs: dict[int, set[int]] = field(default_factory=dict)
    #: live chunk activations keyed by replica (chunks cap mode)
    live_chunks: dict[int, int] = field(default_factory=dict)
    ready: list[tuple[float, tuple, ScheduleOp]] = field(default_factory=list)

    def open_set(self, replica: int) -> set[int]:
        return self.open_mbs.setdefault(replica, set())


def greedy_order(
    schedule: Schedule,
    policy: GreedyPolicy,
    costs: CostConfig | None = None,
) -> Schedule:
    """Fill ``schedule.device_ops`` with a greedy execution order.

    ``schedule`` must arrive empty but with its placement and
    micro-batch→replica assignment set; the full work set is derived
    from the config shape.  Raises :class:`SchedulingError` on deadlock
    (which indicates a broken placement/cap combination, not bad luck).
    """
    costs = costs or CostConfig()
    cfg = schedule.config
    num_stages = schedule.num_stages
    # Per-chunk durations: T_F is one device-worth of layers, spread over
    # the device's chunks (= num_stages / num_devices stages each).
    per_stage = cfg.num_devices / num_stages
    dur = {
        OpKind.FORWARD: costs.t_f * per_stage,
        OpKind.BACKWARD: costs.t_b * per_stage,
    }

    # Build the work set and the dependency graph.
    ops: dict[tuple, ScheduleOp] = {}
    for m in range(cfg.num_microbatches):
        for s in range(num_stages):
            for kind in (OpKind.FORWARD, OpKind.BACKWARD):
                op = schedule.make_op(kind, m, s)
                ops[(kind, m, s)] = op

    dep_count: dict[tuple, int] = {}
    dependents: dict[tuple, list[tuple]] = {k: [] for k in ops}
    for key, op in ops.items():
        deps = schedule.dependencies(op)
        dep_count[key] = len(deps)
        for dep in deps:
            dependents[dep].append(key)

    devices = {d: _DeviceState() for d in range(cfg.num_devices)}
    done_at: dict[tuple, float] = {}
    total = len(ops)
    started = 0

    def data_ready(key: tuple) -> float:
        op = ops[key]
        t = 0.0
        for dep in schedule.dependencies(op):
            arrival = done_at[dep]
            if ops[dep].device != op.device:
                arrival += costs.t_c
            t = max(t, arrival)
        return t

    def release(key: tuple) -> None:
        op = ops[key]
        devices[op.device].ready.append(
            (data_ready(key), policy.priority(op), op)
        )

    for key, count in dep_count.items():
        if count == 0:
            release(key)

    # A backward that is the device's last op for its micro-batch closes
    # the micro-batch (frees the cap slot) when it starts.
    last_backward: dict[tuple[int, int], tuple] = {}
    for key, op in ops.items():
        if op.kind is OpKind.BACKWARD:
            prev = last_backward.get((op.device, op.microbatch))
            # "last" backward = the one whose stage drains latest; in a
            # wave that is the lowest stage on this device.
            if prev is None or ops[prev].stage > op.stage:
                last_backward[(op.device, op.microbatch)] = key

    while started < total:
        # Choose the (device, op) pair with the earliest feasible start.
        best: tuple[float, tuple, int, ScheduleOp] | None = None
        for d, state in devices.items():
            if not state.ready:
                continue
            cap = policy.cap_for(d)
            candidate: tuple[float, tuple, ScheduleOp] | None = None
            for t_ready, prio, op in state.ready:
                if cap is not None and op.kind is OpKind.FORWARD:
                    open_set = state.open_set(op.replica)
                    if policy.cap_mode == "microbatches":
                        blocked = (op.microbatch not in open_set
                                   and len(open_set) >= cap)
                    elif policy.cap_mode == "chunks":
                        blocked = (op.microbatch not in open_set
                                   and state.live_chunks.get(op.replica, 0)
                                   >= cap)
                    else:  # chunks-strict
                        exempt = open_set and op.microbatch == min(open_set)
                        blocked = (not exempt
                                   and state.live_chunks.get(op.replica, 0)
                                   >= cap)
                    if (
                        not blocked
                        and policy.hard_cap is not None
                        and policy.cap_mode != "microbatches"
                    ):
                        live = state.live_chunks.get(op.replica, 0)
                        oldest = (open_set
                                  and op.microbatch == min(open_set))
                        if live >= policy.hard_cap(d) and not oldest:
                            blocked = True
                    if blocked:
                        continue
                start = max(t_ready, state.free_at)
                entry = (start, prio, op)
                if candidate is None or entry[:2] < candidate[:2]:
                    candidate = entry
            if candidate is None:
                continue
            start, prio, op = candidate
            entry2 = (start, prio, d, op)
            if best is None or entry2[:3] < best[:3]:
                best = entry2
        if best is None:
            blocked = sum(len(s.ready) for s in devices.values())
            raise SchedulingError(
                f"{schedule.name}: greedy deadlock with {total - started} ops "
                f"left ({blocked} released but cap-blocked); "
                "raise the open-micro-batch cap"
            )
        start, _, d, op = best
        state = devices[d]
        state.ready = [e for e in state.ready if e[2] is not op]
        end = start + dur[op.kind]
        state.free_at = end
        schedule.append(d, op)
        started += 1
        key = (op.kind, op.microbatch, op.stage)
        done_at[key] = end
        if op.kind is OpKind.FORWARD:
            state.open_set(op.replica).add(op.microbatch)
            state.live_chunks[op.replica] = (
                state.live_chunks.get(op.replica, 0) + 1
            )
        else:
            state.live_chunks[op.replica] = (
                state.live_chunks.get(op.replica, 0) - 1
            )
            if last_backward.get((d, op.microbatch)) == key:
                state.open_set(op.replica).discard(op.microbatch)
        for dep_key in dependents[key]:
            dep_count[dep_key] -= 1
            if dep_count[dep_key] == 0:
                release(dep_key)
    return schedule
