"""PipeDream-style asynchronous 1F1B (no flush) — paper Fig. 4(b).

Asynchronous pipelines drop the end-of-iteration flush: once warm, every
device alternates forward/backward forever, so steady-state bubbles
vanish, at the price of updating weights with stale versions.  We
generate the schedule for ``iterations`` worth of micro-batches as one
continuous stream and track, per op, which weight version it would read
under PipeDream's weight-stashing rule — the staleness analysis in
:mod:`repro.analysis` consumes that.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import PipelineConfig
from ..errors import ConfigError
from ..types import OpKind
from .base import Schedule
from .placement import LinearPlacement


@dataclass(frozen=True)
class WeightVersion:
    """Weight version stamps for an async schedule op."""

    device: int
    microbatch: int
    version: int  # number of optimizer updates applied before this op


def async_1f1b_schedule(config: PipelineConfig,
                        iterations: int = 1) -> Schedule:
    """Continuous 1F1B over ``iterations * B`` micro-batches, no flush."""
    if config.scheme != "async-1f1b":
        raise ConfigError(
            f"async_1f1b_schedule got scheme {config.scheme!r}"
        )
    if iterations < 1:
        raise ConfigError("iterations must be >= 1")
    p = config.num_devices
    total = config.num_microbatches * iterations
    stream = PipelineConfig(
        scheme="async-1f1b",
        num_devices=p,
        num_microbatches=total,
        data_parallel=config.data_parallel,
        microbatch_size=config.microbatch_size,
    )
    placement = LinearPlacement(p)
    sched = Schedule.empty("async-1f1b", stream, placement)
    for d in range(p):
        warmup = min(total, p - d)
        f_next = b_next = 0
        for _ in range(warmup):
            sched.append(d, sched.make_op(OpKind.FORWARD, f_next, d))
            f_next += 1
        while f_next < total:
            sched.append(d, sched.make_op(OpKind.BACKWARD, b_next, d))
            b_next += 1
            sched.append(d, sched.make_op(OpKind.FORWARD, f_next, d))
            f_next += 1
        while b_next < total:
            sched.append(d, sched.make_op(OpKind.BACKWARD, b_next, d))
            b_next += 1
    return sched


def weight_versions(sched: Schedule) -> list[WeightVersion]:
    """PipeDream weight-version stamps for every forward op.

    Without a flush, a device applies micro-batch ``m``'s update as soon
    as its backward completes, so the forward of micro-batch ``m`` on
    device ``d`` reads weights that have absorbed all backwards executed
    on ``d`` before that forward in program order.
    """
    stamps: list[WeightVersion] = []
    for d, ops in sched.device_ops.items():
        updates = 0
        for op in ops:
            if op.kind is OpKind.BACKWARD:
                updates += 1
            else:
                stamps.append(WeightVersion(d, op.microbatch, updates))
    return stamps


def max_staleness(sched: Schedule) -> int:
    """Largest spread of weight versions seen by one micro-batch.

    Synchronous schedules have staleness 0 (all stages read the same
    version).  PipeDream's spread grows with pipeline depth, which is
    the convergence concern Sec. 2.3 cites for asynchronous methods.
    """
    by_mb: dict[int, list[int]] = {}
    for stamp in weight_versions(sched):
        by_mb.setdefault(stamp.microbatch, []).append(stamp.version)
    return max((max(v) - min(v) for v in by_mb.values()), default=0)
