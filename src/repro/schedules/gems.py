"""GEMS (Jain et al.): memory-minimal bidirectional scheduling.

GEMS keeps two mirrored model replicas but admits essentially one
micro-batch per direction at a time, so activation memory stays near
one stage's worth at the cost of a very high bubble ratio — it is the
tall bar in the paper's Fig. 1.  We reproduce it with the greedy engine
on a mirror placement, alternating micro-batches between directions,
with an open-micro-batch cap of 1 per device.
"""

from __future__ import annotations

from ..config import CostConfig, PipelineConfig
from ..errors import ConfigError
from ..types import OpKind, ScheduleOp
from .base import Schedule
from .greedy import GreedyPolicy, greedy_order
from .placement import MirrorPlacement


def _gems_priority(op: ScheduleOp) -> tuple:
    # Micro-batch FIFO dominates: GEMS drains each micro-batch pair
    # before admitting the next, which is exactly its memory story.
    if op.kind is OpKind.BACKWARD:
        return (op.microbatch, 0, op.stage)
    return (op.microbatch, 1, -op.stage)


def gems_schedule(
    config: PipelineConfig,
    costs: CostConfig | None = None,
) -> Schedule:
    if config.scheme != "gems":
        raise ConfigError(f"gems_schedule got scheme {config.scheme!r}")
    placement = MirrorPlacement(config.num_devices)
    sched = Schedule.empty("gems", config, placement)
    # Alternate directions so the up-replica forward of micro-batch
    # 2k+1 overlaps the down-replica backward of micro-batch 2k.
    sched.microbatch_replica = {
        m: m % 2 for m in range(config.num_microbatches)
    }
    policy = GreedyPolicy(priority=_gems_priority, open_cap=lambda d: 1)
    return greedy_order(sched, policy, costs)
