"""Structural validation of schedules.

Invariants (DESIGN.md §5):

1. **Completeness** — every (micro-batch, stage) appears exactly once as
   a forward and once as a backward.
2. **Placement consistency** — every op sits on the device its
   placement dictates, with the right chunk index.
3. **Executability** — the union of per-device program order and the
   dataflow dependency edges is acyclic, i.e. some timing exists under
   which the schedule runs to completion without reordering.
"""

from __future__ import annotations

from collections import deque

from ..errors import ValidationError
from ..types import OpKind
from .base import Schedule


def check_completeness(schedule: Schedule) -> None:
    seen: dict[tuple, int] = {}
    for op in schedule.all_ops():
        key = (op.kind, op.microbatch, op.stage)
        seen[key] = seen.get(key, 0) + 1
    expected = schedule.expected_ops()
    missing = expected - set(seen)
    extra = set(seen) - expected
    dupes = {k for k, n in seen.items() if n > 1}
    problems = []
    if missing:
        problems.append(f"missing {len(missing)} ops, e.g. {sorted(missing)[:3]}")
    if extra:
        problems.append(f"unexpected ops {sorted(extra)[:3]}")
    if dupes:
        problems.append(f"duplicated ops {sorted(dupes)[:3]}")
    if problems:
        raise ValidationError(f"{schedule.name}: " + "; ".join(problems))


def check_placement(schedule: Schedule) -> None:
    for device, ops in schedule.device_ops.items():
        for op in ops:
            want = schedule.placement.device_of(op.stage, op.replica)
            if op.device != device or want != device:
                raise ValidationError(
                    f"{schedule.name}: {op} listed on device {device}, "
                    f"placement says {want}"
                )
            want_chunk = schedule.placement.chunk_of(op.stage, op.replica)
            if op.chunk != want_chunk:
                raise ValidationError(
                    f"{schedule.name}: {op} has chunk {op.chunk}, "
                    f"placement says {want_chunk}"
                )


def residual_cycle(out: dict, indeg: dict) -> list:
    """One concrete cycle among the nodes Kahn's algorithm left behind.

    ``out`` is the adjacency map, ``indeg`` the post-Kahn in-degrees: a
    node with ``indeg > 0`` is unreachable, and the subgraph induced by
    those nodes always contains a cycle (every residual node keeps an
    unsatisfied predecessor).  Used by both the schedule executability
    check and the synthesis legality checker to turn "some ops are
    stuck" into a reportable ``a -> b -> ... -> a`` witness.
    """
    residual = {k for k, n in indeg.items() if n > 0}
    if not residual:
        return []
    rev: dict = {k: [] for k in residual}
    for a, nxts in out.items():
        if a in residual:
            for b in nxts:
                if b in residual:
                    rev[b].append(a)
    # Walk predecessors until a node repeats; the walk cannot dead-end
    # because every residual node has a residual predecessor.
    node = next(iter(sorted(residual, key=repr)))
    seen: dict = {}
    path = []
    while node not in seen:
        seen[node] = len(path)
        path.append(node)
        node = min(rev[node], key=repr)
    cycle = path[seen[node]:]
    cycle.reverse()  # predecessor walk found it backwards
    return cycle


def check_executable(schedule: Schedule) -> None:
    """Kahn's algorithm over program-order + dataflow edges."""
    ops = schedule.all_ops()
    key_of = {(op.kind, op.microbatch, op.stage): op for op in ops}
    indeg: dict[tuple, int] = {k: 0 for k in key_of}
    out: dict[tuple, list[tuple]] = {k: [] for k in key_of}

    def add_edge(a: tuple, b: tuple) -> None:
        out[a].append(b)
        indeg[b] += 1

    for device, dev_ops in schedule.device_ops.items():
        for prev, nxt in zip(dev_ops, dev_ops[1:]):
            add_edge((prev.kind, prev.microbatch, prev.stage),
                     (nxt.kind, nxt.microbatch, nxt.stage))
    for op in ops:
        for dep in schedule.dependencies(op):
            if dep not in key_of:
                raise ValidationError(
                    f"{schedule.name}: {op} depends on absent op {dep}"
                )
            add_edge(dep, (op.kind, op.microbatch, op.stage))

    queue = deque(k for k, n in indeg.items() if n == 0)
    visited = 0
    while queue:
        k = queue.popleft()
        visited += 1
        for nxt in out[k]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
    if visited != len(key_of):
        cycle = " -> ".join(
            f"{k[0].value}(m{k[1]},s{k[2]})"
            for k in residual_cycle(out, indeg)
        )
        raise ValidationError(
            f"{schedule.name}: cyclic order/dataflow constraints; "
            f"{len(key_of) - visited} ops unreachable; "
            f"witness cycle: {cycle}"
        )


def check_flush(schedule: Schedule) -> None:
    """Synchronous semantics: no forward of the *next* iteration exists.

    Within one generated iteration this reduces to: the work set matches
    ``expected_ops`` exactly, already enforced by completeness; kept as
    a named check for symmetry and future multi-iteration schedules.
    """
    check_completeness(schedule)


def validate(schedule: Schedule) -> None:
    """Run all structural checks; raises ValidationError on the first failure."""
    check_completeness(schedule)
    check_placement(schedule)
    check_executable(schedule)
