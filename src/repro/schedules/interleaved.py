"""Megatron-LM interleaved 1F1B (Narayanan et al., 2021).

The model is cut into ``W * P`` stages placed cyclically: device ``d``
holds stages ``d, d+P, d+2P, ...``.  Compared with Hanayo's snake
placement, every chunk boundary crosses devices (including the wrap
from stage ``kP-1`` back to device 0), so the scheme buys its smaller
bubbles with strictly more communication — the comparison Sec. 2.2
draws.

Fidelity note: Megatron's hand schedule coordinates chunk switching in
lockstep across devices; the greedy generator here lands a few bubble
points above its closed form (≈40% vs ≈30% at P=B=8, v=2) while still
beating GPipe.  Interleaved 1F1B is background material in the paper
(not part of its evaluation), so this approximation is acceptable and
documented; the analytic form in :mod:`repro.analysis.bubbles` is the
reference value.
"""

from __future__ import annotations

from ..config import CostConfig, PipelineConfig
from ..errors import ConfigError
from .base import Schedule
from .greedy import GreedyPolicy, greedy_order, wave_priority
from .placement import CyclicPlacement


def interleaved_schedule(
    config: PipelineConfig,
    costs: CostConfig | None = None,
    open_cap: int | None = None,
) -> Schedule:
    if config.scheme != "interleaved":
        raise ConfigError(
            f"interleaved_schedule got scheme {config.scheme!r}"
        )
    placement = CyclicPlacement(config.num_devices, config.num_waves)
    sched = Schedule.empty(
        f"interleaved-v{config.num_waves}", config, placement
    )
    cap = (config.num_waves * config.num_devices if open_cap is None
           else open_cap)
    policy = GreedyPolicy(priority=wave_priority, open_cap=lambda d: cap,
                          cap_mode="chunks")
    return greedy_order(sched, policy, costs)
