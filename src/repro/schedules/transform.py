"""The Chimera → wave transform of Sec. 3.2 (paper Fig. 5).

A 2-replica Chimera pipeline on ``P`` devices is turned into **two
identical one-wave pipelines** on ``P/2`` devices each (the replica pair
becomes plain data parallelism): swap every bright-pipe block on the
upper device half with the dark-pipe block at the symmetric position on
the lower half.  Computation order is unchanged and the swapped
boundaries become device-local, so the wave form is never slower — the
equivalence the test suite checks by simulating both.
"""

from __future__ import annotations

from ..config import PipelineConfig
from ..errors import ConfigError
from ..types import ScheduleOp
from .base import Schedule
from .chimera import chimera_schedule
from .greedy import GreedyPolicy, greedy_order, wave_priority
from .placement import SnakePlacement


def chimera_wave_schedule(config: PipelineConfig, open_cap: int | None = None) -> Schedule:
    """Chimera measured in its wave form (how the paper evaluates it).

    Structurally this is a one-wave snake pipeline: ``S = 2P`` stages on
    ``P`` devices; the model replicas of the original Chimera are
    accounted as extra data parallelism by the caller.
    """
    if config.scheme != "chimera-wave":
        raise ConfigError(
            f"chimera_wave_schedule got scheme {config.scheme!r}"
        )
    placement = SnakePlacement(config.num_devices, 1)
    sched = Schedule.empty("chimera-wave", config, placement)
    cap = 2 * config.num_devices if open_cap is None else open_cap
    policy = GreedyPolicy(priority=wave_priority, open_cap=lambda d: cap,
                          cap_mode="chunks")
    return greedy_order(sched, policy)


def chimera_to_wave(chimera: Schedule) -> tuple[Schedule, Schedule]:
    """Apply the literal block-swap of Fig. 5 to a Chimera schedule.

    Returns the two resulting one-wave pipelines, each on ``P/2``
    devices with ``B/2`` micro-batches (relabeled ``0..B/2-1``).  The
    per-device op *order* is inherited from the Chimera schedule — this
    is a rearrangement, not a rescheduling.
    """
    cfg = chimera.config
    if cfg.scheme != "chimera":
        raise ConfigError("chimera_to_wave needs a chimera schedule")
    p, b = cfg.num_devices, cfg.num_microbatches
    if p % 2:
        raise ConfigError("transform needs an even device count")
    half_p, half_b = p // 2, b // 2

    wave_cfg = PipelineConfig(
        scheme="chimera-wave",
        num_devices=half_p,
        num_microbatches=half_b,
        data_parallel=cfg.data_parallel * 2,
        microbatch_size=cfg.microbatch_size,
    )

    def build(group: int) -> Schedule:
        placement = SnakePlacement(half_p, 1)
        # Step 1 — the literal swap: collect each new device's ops with
        # the position they inherit from the Chimera program.
        position: dict[tuple, int] = {}
        for new_d in range(half_p):
            # Group 0 keeps the lower device half and the down replica;
            # group 1 is its mirror image on the upper half.
            src_d = new_d if group == 0 else p - 1 - new_d
            keep_replica = 0 if group == 0 else 1
            for idx, op in enumerate(chimera.device_ops[src_d]):
                if op.replica == keep_replica:
                    mb = op.microbatch - (0 if group == 0 else half_b)
                else:
                    # The symmetric-position swap: a foreign-replica op
                    # (m, s) is replaced by the kept replica's op of the
                    # partner micro-batch at the same stage index.
                    mb = (op.microbatch - half_b if group == 0
                          else op.microbatch)
                position[(op.kind, mb, op.stage)] = idx
        # Step 2 — re-derive a legal order with the inherited positions
        # as priority.  The paper's hand schedule is mirror-symmetric in
        # time, so the swap alone preserves order; greedy-generated
        # Chimera breaks ties asymmetrically, and this repair keeps the
        # inherited order wherever the wave dependencies allow it.
        sched = Schedule.empty(f"chimera-wave-g{group}", wave_cfg, placement)
        policy = GreedyPolicy(
            priority=lambda op: (position[(op.kind, op.microbatch, op.stage)],),
            open_cap=None,
        )
        return greedy_order(sched, policy)

    return build(0), build(1)


def transformed_from(config: PipelineConfig) -> tuple[Schedule, Schedule]:
    """Convenience: run Chimera then transform it."""
    chimera = chimera_schedule(config)
    return chimera_to_wave(chimera)
