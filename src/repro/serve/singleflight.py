"""Single-flight execution: identical concurrent queries run once.

The advisor's answers are pure functions of the query (same canonical
query → same canonical bytes), so when two clients ask the same
question concurrently there is no reason to execute it twice.  The
registry keys executions by :func:`repro.serve.codec.query_key`; the
first arrival becomes the *leader* and computes, later arrivals become
*followers* that block on the leader's completion and share its answer
bytes (immutable, so sharing is safe).

Only *concurrent* duplicates merge — a query arriving after the leader
finished executes afresh.  That is deliberate: this is deduplication,
not a response cache, so answers always reflect current code and the
registry never needs invalidation.
"""

from __future__ import annotations

import threading

from .. import profiling


class _Flight:
    __slots__ = ("done", "value", "error", "waiters")

    def __init__(self):
        self.done = threading.Event()
        self.value = None
        self.error: BaseException | None = None
        self.waiters = 0


class SingleFlight:
    """Leader/follower dedup of concurrent identical executions."""

    def __init__(self):
        self._lock = threading.Lock()
        self._inflight: dict[str, _Flight] = {}

    def do(self, key: str, fn):
        """Return ``(fn(), deduped)`` — executing ``fn`` at most once
        per concurrent group of equal-``key`` callers.

        The leader (first caller in) runs ``fn`` and publishes the
        result; followers wait and receive the same object with
        ``deduped=True``.  A leader's exception propagates to every
        member of its group — they asked the same question, they get
        the same failure.
        """
        with self._lock:
            flight = self._inflight.get(key)
            leader = flight is None
            if leader:
                flight = self._inflight[key] = _Flight()
            else:
                flight.waiters += 1
        if not leader:
            flight.done.wait()
            profiling.serve_stats().record_dedup()
            if flight.error is not None:
                raise flight.error
            return flight.value, True
        try:
            flight.value = fn()
        except BaseException as exc:
            flight.error = exc
            raise
        finally:
            # unregister before waking followers: a brand-new arrival
            # must start a fresh flight, not join a finished one
            with self._lock:
                del self._inflight[key]
            flight.done.set()
        return flight.value, False

    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def waiting(self, key: str) -> int:
        """Followers currently parked on ``key``'s flight (0 if none)."""
        with self._lock:
            flight = self._inflight.get(key)
            return 0 if flight is None else flight.waiters
