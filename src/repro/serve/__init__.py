"""Advisor-as-a-service: warm-cache concurrent query serving.

``repro advise``/``sweep`` are batch CLIs that pay process startup and
cold caches on every call.  This package keeps the expensive state hot
— the structural :func:`~repro.analysis.plan_cache`, bound-plan /
``RetimeBuffers`` reuse inside the batched runtime — in one long-lived
process and answers what-if queries over HTTP:

* :mod:`.codec` — one JSON request/answer codec shared by the server,
  the ``repro query`` client and ``repro advise --json``, so batch and
  served answers are diffable byte for byte;
* :mod:`.queries` — query expansion + answer folding, shared by the
  batch CLI and the server (parity by construction);
* :mod:`.batcher` — the continuous micro-batcher: concurrent in-flight
  queries' measurement cells coalesce into single
  ``measure_throughput_batch`` / ``measure_hybrid_throughput_batch``
  calls, so the serving layer inherits the lockstep ``PlanBatch``
  speedups instead of re-deriving them;
* :mod:`.singleflight` — identical concurrent queries execute once and
  share the answer;
* :mod:`.server` — the stdlib ``ThreadingHTTPServer`` daemon with
  streamed sweep progress and graceful drain.
"""

from .codec import AdviseQuery, SweepQuery, dumps_canonical, query_key
from .queries import advise_answer, format_advise, sweep_answer
from .server import AdvisorServer, serve_until_signalled

__all__ = [
    "AdviseQuery",
    "AdvisorServer",
    "SweepQuery",
    "advise_answer",
    "dumps_canonical",
    "format_advise",
    "query_key",
    "serve_until_signalled",
    "sweep_answer",
]
