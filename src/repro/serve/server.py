"""The advisor daemon: a stdlib ``ThreadingHTTPServer`` over hot caches.

One long-lived process holds everything the batch CLIs rebuild from
scratch on each invocation — the interpreter and imports, the
structural :func:`~repro.analysis.plan_cache` with its bound-plan
re-timings, the batched runtime's ``RetimeBuffers`` — and answers
queries over plain HTTP/1.1:

* ``POST /advise`` — one :class:`~repro.serve.codec.AdviseQuery` body,
  one canonical answer.  Identical concurrent queries are merged by the
  single-flight registry; distinct concurrent queries coalesce in the
  micro-batcher and execute as lanes of shared lockstep batches.
* ``POST /sweep`` — a :class:`~repro.serve.codec.SweepQuery` body,
  answered as a **chunked NDJSON stream**: one
  ``{"kind": "progress", "done": n, "total": N}`` frame per finished
  work unit, then the full table payload as the final line.
* ``GET /healthz`` — liveness + drain state.
* ``GET /stats`` — serving counters, batching stats, plan-cache state.

Shutdown is graceful: :meth:`AdvisorServer.drain` flips the server into
a draining state (new queries get 503), waits for in-flight queries to
finish, then closes the micro-batcher.  ``repro serve`` wires this to
SIGTERM/SIGINT via :func:`serve_until_signalled`.

Everything here is stdlib-only by design — a client needs nothing but
``urllib`` (see ``repro query``), and the test suite can stand a real
server up on port 0 in-process.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .. import profiling
from ..analysis import plan_cache
from ..errors import ConfigError
from .batcher import DEFAULT_MAX_LANES, DEFAULT_WINDOW_S, MicroBatcher
from .codec import AdviseQuery, SweepQuery, dumps_canonical, query_key
from .queries import advise_answer, sweep_answer
from .singleflight import SingleFlight

#: request bodies past this are rejected outright (64 KiB is orders of
#: magnitude beyond any legitimate query)
MAX_BODY_BYTES = 64 * 1024


class AdvisorServer(ThreadingHTTPServer):
    """The serving daemon; one instance owns one batcher + registry."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int] = ("127.0.0.1", 0), *,
                 window_s: float = DEFAULT_WINDOW_S,
                 max_lanes: int = DEFAULT_MAX_LANES,
                 coalesce: bool = True,
                 quiet: bool = True):
        super().__init__(address, _Handler)
        self.batcher = MicroBatcher(window_s=window_s,
                                    max_lanes=max_lanes,
                                    coalesce=coalesce)
        self.flights = SingleFlight()
        self.quiet = quiet
        self.started = time.monotonic()
        self._state = threading.Condition()
        self._draining = False
        self._inflight = 0

    # -- addresses -----------------------------------------------------------

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"

    # -- drain protocol ------------------------------------------------------

    def enter_query(self) -> bool:
        """Admit one query; ``False`` once draining (handler sends 503)."""
        with self._state:
            if self._draining:
                return False
            self._inflight += 1
            return True

    def exit_query(self) -> None:
        with self._state:
            self._inflight -= 1
            self._state.notify_all()

    @property
    def draining(self) -> bool:
        with self._state:
            return self._draining

    def drain(self, timeout: float = 60.0) -> bool:
        """Stop admitting queries, wait out in-flight ones, close the
        batcher.  Returns ``False`` if in-flight work outlived
        ``timeout`` (their daemon threads are then abandoned)."""
        with self._state:
            self._draining = True
            clean = self._state.wait_for(lambda: self._inflight == 0,
                                         timeout=timeout)
        self.batcher.close()
        return clean

    def stats_payload(self) -> dict:
        cache = plan_cache()
        return {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "draining": self.draining,
            "serve": profiling.serve_stats().snapshot(),
            "batching": vars_of(profiling.batching_stats()),
            "plan_cache": {
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "insertions": cache.insertions,
            },
        }


def vars_of(stats) -> dict:
    """Public counters of a stats dataclass (JSON-safe)."""
    out = {}
    for key, value in vars(stats).items():
        if key.startswith("_"):
            continue
        if isinstance(value, dict):
            out[key] = {str(k): v for k, v in sorted(value.items())}
        elif isinstance(value, (int, float)):
            out[key] = value
    return out


class _Handler(BaseHTTPRequestHandler):
    """Per-connection handler; ``self.server`` is the AdvisorServer."""

    server: AdvisorServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, fmt, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            sys.stderr.write("serve: " + fmt % args + "\n")

    def _send(self, status: int, body: bytes,
              content_type: str = "application/json") -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, status: int, payload) -> None:
        self._send(status, dumps_canonical(payload))

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_query_payload(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ConfigError("request body is empty; send a JSON query")
        if length > MAX_BODY_BYTES:
            raise ConfigError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}")

    # -- chunked streaming (sweep progress) ----------------------------------

    def _start_chunked(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

    def _write_chunk(self, data: bytes) -> None:
        self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def _end_chunked(self) -> None:
        self.wfile.write(b"0\r\n\r\n")

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._send_json(200, {"ok": True,
                                  "draining": self.server.draining})
        elif self.path == "/stats":
            self._send_json(200, self.server.stats_payload())
        else:
            self._send_error_json(404, f"no such path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path not in ("/advise", "/sweep"):
            self._send_error_json(404, f"no such path {self.path!r}")
            return
        if not self.server.enter_query():
            self._send_error_json(503, "server is draining")
            return
        try:
            if self.path == "/advise":
                self._handle_advise()
            else:
                self._handle_sweep()
        except ConfigError as exc:
            profiling.serve_stats().record_error()
            self._send_error_json(400, str(exc))
        except BrokenPipeError:
            pass  # client went away mid-answer; nothing to tell it
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            profiling.serve_stats().record_error()
            try:
                self._send_error_json(
                    500, f"{type(exc).__name__}: {exc}")
            except OSError:
                pass
        finally:
            self.server.exit_query()

    def _handle_advise(self) -> None:
        query = AdviseQuery.from_payload(self._read_query_payload())
        batcher = self.server.batcher
        start = time.perf_counter()

        def execute() -> bytes:
            return dumps_canonical(advise_answer(
                query,
                measure_flat=batcher.measure_flat,
                measure_hybrid=batcher.measure_hybrid,
            ))

        body, _deduped = self.server.flights.do(
            query_key("advise", query), execute)
        profiling.serve_stats().record_query(
            "advise", time.perf_counter() - start)
        self._send(200, body)

    def _handle_sweep(self) -> None:
        query = SweepQuery.from_payload(self._read_query_payload())
        batcher = self.server.batcher
        start = time.perf_counter()
        self._start_chunked()

        def on_progress(done: int, total: int) -> None:
            self._write_chunk(dumps_canonical(
                {"kind": "progress", "done": done, "total": total}))

        try:
            payload = sweep_answer(
                query,
                measure_flat=batcher.measure_flat,
                measure_hybrid=batcher.measure_hybrid,
                progress=on_progress,
            )
            self._write_chunk(dumps_canonical(payload))
        except Exception as exc:  # headers are gone; fail in-band
            profiling.serve_stats().record_error()
            self._write_chunk(dumps_canonical(
                {"kind": "error",
                 "error": f"{type(exc).__name__}: {exc}"}))
        finally:
            self._end_chunked()
        profiling.serve_stats().record_query(
            "sweep", time.perf_counter() - start)


def serve_until_signalled(server: AdvisorServer,
                          out=sys.stdout) -> int:
    """Run ``server`` until SIGTERM/SIGINT, then drain gracefully.

    Prints the ready line (``serving on http://host:port``) once the
    listener is live — tests and the benchmark parse it — and a final
    stats summary after the drain.  Returns a process exit code.
    """
    stop = threading.Event()

    def on_signal(_signum, _frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        previous[signum] = signal.signal(signum, on_signal)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-accept", daemon=True)
    thread.start()
    print(f"serving on {server.url}", file=out, flush=True)
    try:
        stop.wait()
        print("draining...", file=out, flush=True)
        clean = server.drain()
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()
        print(profiling.serve_stats().describe(), file=out, flush=True)
        print("drained" if clean else "drain timed out", file=out,
              flush=True)
        return 0 if clean else 1
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
