"""Query expansion and answer folding — one path for CLI and server.

``repro advise`` and the server's ``/advise`` endpoint both call
:func:`advise_answer`; ``repro sweep``-shaped served queries go through
:func:`sweep_answer`, which assembles its table with the same
:func:`repro.sweep.engine.assemble_table` the batch engine uses.  The
measurement step is pluggable: the CLI passes nothing (direct
``measure_throughput_batch`` / ``measure_hybrid_throughput_batch``
calls), the server passes the micro-batcher's executors — and because
every lane the batched runtime produces is bit-identical to the scalar
core (pinned since PR 7/8), a served answer equals the batch answer
byte for byte once both sides serialize canonically.
"""

from __future__ import annotations

from ..analysis.hybrid import (
    HybridLayout,
    HybridRequest,
    measure_hybrid_throughput_batch,
)
from ..analysis.report import format_table
from ..analysis.scaling import layouts_for
from ..analysis.throughput import (
    ThroughputRequest,
    ThroughputResult,
    measure_throughput_batch,
)
from ..cluster.presets import get_cluster
from ..errors import ConfigError
from ..sweep.spec import SweepSpec, feasible_waves, split_batch
from .codec import ADVISE_SCHEMES, CODEC_VERSION, AdviseQuery, SweepQuery

#: model factories by query name (import deferred — models are cheap,
#: but keeping one table makes the valid set obvious)
def _model(name: str):
    from ..models import bert_64, gpt_128, tiny_model

    return {"bert": bert_64, "gpt": gpt_128, "tiny": tiny_model}[name]()


def advise_requests(
    query: AdviseQuery,
) -> tuple[list[tuple[str, int, int, int, int]], list]:
    """Expand a query to measurement requests.

    Returns ``(cells, requests)`` aligned index-for-index: ``cells``
    carries the ``(scheme, p, d, tp, w)`` identity of each request.
    TP = 1 cells become :class:`ThroughputRequest`, TP > 1 cells
    :class:`HybridRequest` — mixed lists never occur since ``tp`` is a
    single degree per query.  Raises :class:`ConfigError` when no
    (P, D) layout fits the device budget (same verdict and message as
    the original per-cell CLI loop).
    """
    model = _model(query.model)
    cluster = get_cluster(query.cluster, query.devices)
    budget = query.devices // query.tp
    layouts = tuple(
        (p, d) for p, d in layouts_for(budget)
        if query.dp is None or d in query.dp
    )
    if not layouts:
        raise ConfigError(
            f"no (P, D) layout fits {query.devices} devices with "
            f"--tp {query.tp}"
            + (f" --dp {list(query.dp)}" if query.dp else "")
        )
    cells: list[tuple[str, int, int, int, int]] = []
    requests: list = []
    for scheme in ADVISE_SCHEMES:
        for p, d in layouts:
            shape = split_batch(query.batch, d, p, scheme)
            if shape is None:
                continue
            waves = (feasible_waves(model, p) if scheme == "hanayo"
                     else [1])
            for w in waves:
                cells.append((scheme, p, d, query.tp, w))
                if query.tp == 1:
                    requests.append(ThroughputRequest(
                        scheme=scheme, cluster=cluster, model=model,
                        p=p, num_microbatches=shape[0], d=d, w=w,
                        microbatch_size=shape[1],
                        capacity_bytes=query.capacity_bytes,
                        contention=query.contention,
                    ))
                else:
                    requests.append(HybridRequest(
                        scheme=scheme, cluster=cluster, model=model,
                        layout=HybridLayout(tp=query.tp, p=p, d=d),
                        num_microbatches=shape[0], w=w,
                        microbatch_size=shape[1],
                        capacity_bytes=query.capacity_bytes,
                        contention=query.contention,
                    ))
    return cells, requests


def advise_answer(
    query: AdviseQuery,
    measure_flat=None,
    measure_hybrid=None,
) -> dict:
    """The full answer payload for one advise query.

    ``measure_flat`` / ``measure_hybrid`` execute request lists and
    return outcome lists in request order (default: the batch harnesses
    directly; the server passes the micro-batcher's executors).  Rows
    are ranked by throughput — OOM cells sink to the bottom — with a
    deterministic structural tie-break, truncated to ``query.top``.
    """
    measure_flat = measure_flat or measure_throughput_batch
    measure_hybrid = measure_hybrid or measure_hybrid_throughput_batch
    cells, requests = advise_requests(query)
    if query.tp == 1:
        outcomes = measure_flat(requests) if requests else []
    else:
        outcomes = measure_hybrid(requests) if requests else []
    rows = []
    for (scheme, p, d, tp, w), outcome in zip(cells, outcomes):
        if isinstance(outcome, ConfigError):
            # infeasible cell (layout/node-size limits) — the paper's
            # empty grid slots; anything else propagated already
            continue
        result: ThroughputResult = outcome
        rows.append({
            "scheme": scheme, "p": p, "d": d, "tp": tp, "w": w,
            "seq_per_s": result.seq_per_s,
            "oom": result.oom,
            "statically_pruned": result.statically_pruned,
        })
    rows.sort(key=lambda r: (
        -(r["seq_per_s"] if r["seq_per_s"] is not None else float("-inf")),
        r["scheme"], r["p"], r["d"], r["tp"], r["w"],
    ))
    return {
        "kind": "advise",
        "version": CODEC_VERSION,
        "query": query.to_payload(),
        "rows": rows[: query.top],
        "considered": len(rows),
    }


def format_advise(payload: dict) -> str:
    """Render an advise answer payload as the CLI table."""
    query = payload["query"]
    body = [
        [r["scheme"], r["p"], r["d"], r["tp"], r["w"],
         None if r["oom"] else f"{r['seq_per_s']:.2f}"]
        for r in payload["rows"]
    ]
    title = (f"{query['model']} on cluster {query['cluster']} "
             f"({query['devices']} devices), batch {query['batch']}")
    if query.get("capacity_gib") is not None:
        title += f", capacity {query['capacity_gib']:g} GiB"
    return format_table(["scheme", "P", "D", "TP", "W", "seq/s"],
                        body, title=title)


# -- sweep queries ------------------------------------------------------------


def sweep_spec(query: SweepQuery) -> SweepSpec:
    """Lower a served sweep query to the engine's declarative spec."""
    return SweepSpec(
        schemes=query.schemes,
        clusters=(get_cluster(query.cluster, query.devices),),
        models=tuple(_model(name) for name in query.models),
        layouts=(query.layouts if query.layouts is not None
                 else layouts_for(query.devices)),
        total_batches=query.batches,
        waves=query.waves,
        tensor_parallel=query.tp,
        capacity_bytes=query.capacity_bytes,
        contention=query.contention,
    )


def sweep_answer(
    query: SweepQuery,
    measure_flat=None,
    measure_hybrid=None,
    progress=None,
) -> dict:
    """Evaluate a served sweep and fold it into the table payload.

    The grid expands and groups exactly like the batch engine
    (:func:`repro.sweep.engine.run_sweep` with no on-disk cache): cells
    sharing every structural axis form one work unit measured through
    the batch harnesses.  After each unit finishes, ``progress(done,
    total)`` fires — the server streams these as chunked frames.  The
    final payload's ``result`` is exactly ``SweepTable.to_json``
    content for the same spec.
    """
    from ..sweep.engine import assemble_table, evaluate_unit_requests

    measure_flat = measure_flat or measure_throughput_batch
    measure_hybrid = measure_hybrid or measure_hybrid_throughput_batch
    spec = sweep_spec(query)
    points = spec.expand()
    jobs = [
        (i, point, spec.clusters[point.cluster_index],
         spec.models[point.model_index], spec.overlap,
         spec.enforce_memory, spec.capacity_bytes, spec.contention)
        for i, point in enumerate(points)
    ]
    from ..sweep.engine import _batch_units

    units = _batch_units(jobs)
    records: dict[int, tuple[dict, bool]] = {}
    done = 0
    for unit in units:
        for index, record in evaluate_unit_requests(
                unit, measure_flat=measure_flat,
                measure_hybrid=measure_hybrid):
            records[index] = (record, False)
        done += len(unit)
        if progress is not None:
            progress(done, len(points))
    table = assemble_table(spec, points, records)
    import json as _json

    return {
        "kind": "sweep",
        "version": CODEC_VERSION,
        "query": query.to_payload(),
        "result": _json.loads(table.to_json()),
    }
