"""The continuous micro-batcher: cross-query lockstep measurement.

Handler threads do not measure anything themselves — they submit their
query's measurement requests here and block.  A single dispatcher
thread collects whatever is in flight across *all* concurrent queries
(after a short coalescing window), and executes it as one
:func:`~repro.analysis.measure_throughput_batch` /
:func:`~repro.analysis.measure_hybrid_throughput_batch` call.  Those
harnesses group lanes by :attr:`ExecutablePlan.congruence_key` and
advance them through one vectorized ``PlanBatch`` per group — so two
concurrent "best config?" queries whose grids share structures (they
almost always do: the scheme × layout cross is the same, only batch
sizes and clusters differ) stack into the same ``[N]``-wide NumPy
steps, and the serving layer inherits the 10–25× batched speedups
instead of re-deriving them.

A small pool of dispatcher threads (``workers``) runs concurrently:
coalescing amortizes the per-lane Python overhead (plan lookup,
re-timing, result folding) across a batch, while parallel dispatches
keep multiple cores busy — the lockstep stepper's NumPy kernels release
the GIL, so frozen batches genuinely overlap.

Every outcome is exactly what the caller would have computed itself —
the batch harnesses are bit-identical to the scalar core per lane
(pinned since PR 7/8) — so coalescing is invisible in answers and only
visible in latency.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

from .. import profiling
from ..analysis.hybrid import measure_hybrid_throughput_batch
from ..analysis.throughput import measure_throughput_batch

#: default coalescing window: how long the dispatcher waits after the
#: first pending request for concurrent queries to pile on.  Warm-cache
#: grids execute in single-digit milliseconds, so a couple of
#: milliseconds of gathering buys whole-query coalescing without
#: noticeably moving p50.
DEFAULT_WINDOW_S = 0.002

#: default cap on lanes per dispatch; past this the dispatcher executes
#: what it has and loops (bounds per-dispatch memory and keeps one
#: giant sweep from starving small advise queries for too long)
DEFAULT_MAX_LANES = 512


def default_workers() -> int:
    """Dispatcher pool size: a few threads, bounded by the host."""
    return max(1, min(4, (os.cpu_count() or 2) - 1))


class _Pending:
    """One submission: a request list awaiting its outcome list."""

    __slots__ = ("outcomes", "remaining", "done", "error")

    def __init__(self, n: int):
        self.outcomes: list = [None] * n
        self.remaining = n
        self.done = threading.Event()
        self.error: BaseException | None = None


class MicroBatcher:
    """Continuous micro-batching front end over the batch harnesses.

    ``coalesce=False`` disables the queue entirely — submissions
    execute synchronously in the calling thread, one harness call per
    submission.  That is the "micro-batcher off" baseline the load
    benchmark compares against: per-query batching still happens (the
    harnesses batch within one request list), but concurrent queries
    no longer share lockstep batches.
    """

    def __init__(self, window_s: float = DEFAULT_WINDOW_S,
                 max_lanes: int = DEFAULT_MAX_LANES,
                 coalesce: bool = True,
                 workers: int | None = None):
        self.window_s = window_s
        self.max_lanes = max_lanes
        self.coalesce = coalesce
        self._queue: deque = deque()   # (kind, request, index, pending)
        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._closed = False
        self._threads: list[threading.Thread] = []
        if coalesce:
            count = workers if workers is not None else default_workers()
            self._threads = [
                threading.Thread(target=self._loop,
                                 name=f"repro-serve-batcher-{i}",
                                 daemon=True)
                for i in range(max(1, count))
            ]
            for thread in self._threads:
                thread.start()

    # -- submission ----------------------------------------------------------

    def measure_flat(self, requests: list) -> list:
        """Outcomes for flat (TP = 1) requests, in request order."""
        return self._measure("flat", requests)

    def measure_hybrid(self, requests: list) -> list:
        """Outcomes for hybrid (TP > 1) requests, in request order."""
        return self._measure("hybrid", requests)

    def _measure(self, kind: str, requests: list) -> list:
        if not requests:
            return []
        if not self.coalesce:
            return self._execute(kind, list(requests))
        pending = _Pending(len(requests))
        with self._work:
            if self._closed:
                raise RuntimeError("micro-batcher is closed (draining)")
            for i, request in enumerate(requests):
                self._queue.append((kind, request, i, pending))
            self._work.notify_all()
        pending.done.wait()
        if pending.error is not None:
            raise pending.error
        return pending.outcomes

    # -- the dispatcher ------------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._work:
                while not self._queue and not self._closed:
                    self._work.wait()
                if not self._queue and self._closed:
                    return
                # coalescing window: give concurrent queries a moment
                # to add their lanes before the batch freezes
                deadline = time.monotonic() + self.window_s
                while len(self._queue) < self.max_lanes:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or self._closed:
                        break
                    self._work.wait(timeout=remaining)
                depth = len(self._queue)
                items = [self._queue.popleft()
                         for _ in range(min(depth, self.max_lanes))]
            profiling.serve_stats().record_dispatch(len(items), depth)
            for kind in ("flat", "hybrid"):
                batch = [item for item in items if item[0] == kind]
                if not batch:
                    continue
                try:
                    outcomes = self._execute(
                        kind, [request for _k, request, _i, _p in batch])
                except BaseException as exc:  # propagate to every waiter
                    for _k, _request, _i, pending in batch:
                        pending.error = exc
                    outcomes = [None] * len(batch)
                # a submission's lanes can land in two dispatchers'
                # batches, so completion accounting takes the lock
                ready = []
                with self._lock:
                    for (_k, _request, i, pending), outcome in zip(
                            batch, outcomes):
                        pending.outcomes[i] = outcome
                        pending.remaining -= 1
                        if pending.remaining == 0:
                            ready.append(pending)
                for pending in ready:
                    pending.done.set()

    def _execute(self, kind: str, requests: list) -> list:
        if kind == "hybrid":
            return measure_hybrid_throughput_batch(requests)
        return measure_throughput_batch(requests)

    # -- lifecycle -----------------------------------------------------------

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._queue)

    def close(self) -> None:
        """Stop accepting work, finish what is queued, join the thread.

        Part of graceful drain: submissions racing past the close gate
        still complete (the dispatcher drains the queue before
        exiting); later submissions raise.
        """
        with self._work:
            self._closed = True
            self._work.notify_all()
        for thread in self._threads:
            thread.join(timeout=60)
        self._threads = []
