"""The one JSON codec for advisor queries and answers.

Every surface that speaks about queries — ``repro advise --json``, the
HTTP server's request bodies and responses, the ``repro query`` client,
the load benchmark — goes through this module, so a served answer and a
batch-CLI answer for the same query are **the same bytes**: both sides
serialize with :func:`dumps_canonical` (sorted keys, no whitespace,
trailing newline) over payloads produced by the same folding code in
:mod:`repro.serve.queries`.

Queries are validated strictly: unknown fields, wrong types and
out-of-range values raise :class:`~repro.errors.ConfigError` with a
message naming the offending field, which the server maps to a 400.
:func:`query_key` content-hashes a canonical query for the
single-flight registry — two requests with equal keys are *the same
question* and may share one execution's answer.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..errors import ConfigError

#: bump when query or answer payload layout changes; a client/server
#: version mismatch then fails loudly instead of mis-parsing
CODEC_VERSION = 2

#: model names a query may reference (resolved in ``queries.py``)
KNOWN_MODELS = ("bert", "gpt", "tiny")

#: cluster presets a query may reference
KNOWN_CLUSTERS = ("PC", "FC", "TACC", "TC")

#: the configuration-search scheme set (paper Sec. 5.3)
ADVISE_SCHEMES = ("gpipe", "dapple", "chimera-wave", "hanayo")


def dumps_canonical(payload) -> bytes:
    """Canonical JSON bytes: sorted keys, compact, one trailing newline.

    Two payloads with equal content always serialize to equal bytes, so
    answers can be diffed (and deduplicated) byte for byte.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False)
    return text.encode("utf-8") + b"\n"


def query_key(kind: str, query) -> str:
    """Content hash identifying one query for single-flight dedup."""
    body = dumps_canonical({"kind": kind, "version": CODEC_VERSION,
                            "query": query.to_payload()})
    return hashlib.sha256(body).hexdigest()


_MISSING = object()


def _require(payload: dict, field: str, types, *, default=_MISSING):
    value = payload.get(field, default)
    if value is _MISSING:
        raise ConfigError(f"query is missing required field {field!r}")
    if value is not None and not isinstance(value, types):
        raise ConfigError(
            f"query field {field!r} has type {type(value).__name__}, "
            f"expected {types}"
        )
    # bool is an int subclass; never accept True where a count is meant
    if isinstance(value, bool) and bool not in (
            types if isinstance(types, tuple) else (types,)):
        raise ConfigError(f"query field {field!r} must not be a boolean")
    return value


def _check_known(payload: dict, known: tuple[str, ...]) -> None:
    extra = sorted(set(payload) - set(known))
    if extra:
        raise ConfigError(
            f"unknown query field(s) {extra}; expected a subset of "
            f"{sorted(known)}"
        )


def _int_tuple(value, field: str) -> tuple[int, ...]:
    if not isinstance(value, (list, tuple)) or not value or any(
            isinstance(v, bool) or not isinstance(v, int) or v < 1
            for v in value):
        raise ConfigError(
            f"query field {field!r} must be a non-empty list of "
            f"positive integers, got {value!r}"
        )
    return tuple(value)


@dataclass(frozen=True)
class AdviseQuery:
    """One "best config for (cluster, model, batch, capacity)" question.

    The canonical form is **normalized** — ``dp`` sorted and
    deduplicated — so equivalent questions hash to one
    :func:`query_key` and single-flight can merge them.
    """

    cluster: str
    model: str
    devices: int
    batch: int
    tp: int = 1
    dp: tuple[int, ...] | None = None
    top: int = 10
    capacity_gib: float | None = None
    contention: bool = False

    @classmethod
    def make(cls, cluster: str, model: str, devices: int, batch: int,
             tp: int = 1, dp=None, top: int = 10,
             capacity_gib: float | None = None,
             contention: bool = False) -> "AdviseQuery":
        """Validating, normalizing constructor (CLI args and payloads)."""
        cluster = str(cluster).upper()
        if cluster not in KNOWN_CLUSTERS:
            raise ConfigError(
                f"unknown cluster {cluster!r}; expected one of "
                f"{list(KNOWN_CLUSTERS)}"
            )
        if model not in KNOWN_MODELS:
            raise ConfigError(
                f"unknown model {model!r}; expected one of "
                f"{list(KNOWN_MODELS)}"
            )
        for name, value in (("devices", devices), ("batch", batch),
                            ("tp", tp), ("top", top)):
            if isinstance(value, bool) or not isinstance(value, int) \
                    or value < 1:
                raise ConfigError(
                    f"query field {name!r} must be a positive integer, "
                    f"got {value!r}"
                )
        if devices % tp:
            raise ConfigError(
                f"tensor-parallel degree {tp} must divide the device "
                f"count {devices}"
            )
        if dp is not None:
            dp = tuple(sorted(set(_int_tuple(dp, "dp"))))
        if capacity_gib is not None:
            if isinstance(capacity_gib, bool) or \
                    not isinstance(capacity_gib, (int, float)) \
                    or capacity_gib <= 0:
                raise ConfigError(
                    f"query field 'capacity_gib' must be a positive "
                    f"number, got {capacity_gib!r}"
                )
            capacity_gib = float(capacity_gib)
        if not isinstance(contention, bool):
            raise ConfigError(
                f"query field 'contention' must be a boolean, "
                f"got {contention!r}"
            )
        return cls(cluster=cluster, model=model, devices=devices,
                   batch=batch, tp=tp, dp=dp, top=top,
                   capacity_gib=capacity_gib, contention=contention)

    @classmethod
    def from_payload(cls, payload) -> "AdviseQuery":
        if not isinstance(payload, dict):
            raise ConfigError(
                f"advise query must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        _check_known(payload, ("cluster", "model", "devices", "batch",
                               "tp", "dp", "top", "capacity_gib",
                               "contention"))
        return cls.make(
            cluster=_require(payload, "cluster", str),
            model=_require(payload, "model", str),
            devices=_require(payload, "devices", int),
            batch=_require(payload, "batch", int),
            tp=_require(payload, "tp", int, default=1),
            dp=_require(payload, "dp", (list, tuple), default=None),
            top=_require(payload, "top", int, default=10),
            capacity_gib=_require(payload, "capacity_gib", (int, float),
                                  default=None),
            contention=_require(payload, "contention", bool,
                                default=False),
        )

    def to_payload(self) -> dict:
        return {
            "cluster": self.cluster,
            "model": self.model,
            "devices": self.devices,
            "batch": self.batch,
            "tp": self.tp,
            "dp": None if self.dp is None else list(self.dp),
            "top": self.top,
            "capacity_gib": self.capacity_gib,
            "contention": self.contention,
        }

    @property
    def capacity_bytes(self) -> int | None:
        return (None if self.capacity_gib is None
                else int(self.capacity_gib * 2**30))


@dataclass(frozen=True)
class SweepQuery:
    """A served multi-cell sweep: a grid, not a single ranking.

    Mirrors the ``repro sweep`` surface (one cluster, many schemes /
    models / batches / TP degrees; layouts default to every (P, D)
    split of ``devices``).  The server streams progress frames while
    the grid executes and closes with the full table payload —
    identical in content to ``repro sweep --json``.
    """

    schemes: tuple[str, ...]
    cluster: str
    models: tuple[str, ...]
    devices: int
    batches: tuple[int, ...]
    tp: tuple[int, ...] = (1,)
    waves: tuple[int, ...] = (1, 2, 4, 8)
    layouts: tuple[tuple[int, ...], ...] | None = None
    capacity_gib: float | None = None
    contention: bool = False

    @classmethod
    def make(cls, schemes, cluster: str, models, devices: int, batches,
             tp=(1,), waves=(1, 2, 4, 8), layouts=None,
             capacity_gib: float | None = None,
             contention: bool = False) -> "SweepQuery":
        from ..config import KNOWN_SCHEMES

        schemes = tuple(schemes)
        if not schemes or any(s not in KNOWN_SCHEMES for s in schemes):
            raise ConfigError(
                f"query field 'schemes' must be a non-empty list drawn "
                f"from {sorted(KNOWN_SCHEMES)}, got {list(schemes)!r}"
            )
        cluster = str(cluster).upper()
        if cluster not in KNOWN_CLUSTERS:
            raise ConfigError(
                f"unknown cluster {cluster!r}; expected one of "
                f"{list(KNOWN_CLUSTERS)}"
            )
        models = tuple(models)
        if not models or any(m not in KNOWN_MODELS for m in models):
            raise ConfigError(
                f"query field 'models' must be a non-empty list drawn "
                f"from {list(KNOWN_MODELS)}, got {list(models)!r}"
            )
        if isinstance(devices, bool) or not isinstance(devices, int) \
                or devices < 2:
            raise ConfigError(
                f"query field 'devices' must be an integer >= 2, "
                f"got {devices!r}"
            )
        if layouts is not None:
            layouts = tuple(tuple(layout) for layout in layouts)
            for layout in layouts:
                if len(layout) not in (2, 3) or any(
                        isinstance(v, bool) or not isinstance(v, int)
                        or v < 1 for v in layout):
                    raise ConfigError(
                        f"bad layout {list(layout)!r}; want [P, D] or "
                        f"[P, D, TP] of positive integers"
                    )
        if capacity_gib is not None:
            if isinstance(capacity_gib, bool) or \
                    not isinstance(capacity_gib, (int, float)) \
                    or capacity_gib <= 0:
                raise ConfigError(
                    f"query field 'capacity_gib' must be a positive "
                    f"number, got {capacity_gib!r}"
                )
            capacity_gib = float(capacity_gib)
        if not isinstance(contention, bool):
            raise ConfigError(
                f"query field 'contention' must be a boolean, "
                f"got {contention!r}"
            )
        return cls(
            schemes=schemes, cluster=cluster, models=models,
            devices=devices, batches=_int_tuple(batches, "batches"),
            tp=tuple(sorted(set(_int_tuple(tp, "tp")))),
            waves=_int_tuple(waves, "waves"), layouts=layouts,
            capacity_gib=capacity_gib, contention=contention,
        )

    @classmethod
    def from_payload(cls, payload) -> "SweepQuery":
        if not isinstance(payload, dict):
            raise ConfigError(
                f"sweep query must be a JSON object, got "
                f"{type(payload).__name__}"
            )
        _check_known(payload, ("schemes", "cluster", "models", "devices",
                               "batches", "tp", "waves", "layouts",
                               "capacity_gib", "contention"))
        return cls.make(
            schemes=_require(payload, "schemes", (list, tuple)),
            cluster=_require(payload, "cluster", str),
            models=_require(payload, "models", (list, tuple)),
            devices=_require(payload, "devices", int),
            batches=_require(payload, "batches", (list, tuple)),
            tp=_require(payload, "tp", (list, tuple), default=[1]),
            waves=_require(payload, "waves", (list, tuple),
                           default=[1, 2, 4, 8]),
            layouts=_require(payload, "layouts", (list, tuple),
                             default=None),
            capacity_gib=_require(payload, "capacity_gib", (int, float),
                                  default=None),
            contention=_require(payload, "contention", bool,
                                default=False),
        )

    def to_payload(self) -> dict:
        return {
            "schemes": list(self.schemes),
            "cluster": self.cluster,
            "models": list(self.models),
            "devices": self.devices,
            "batches": list(self.batches),
            "tp": list(self.tp),
            "waves": list(self.waves),
            "layouts": (None if self.layouts is None
                        else [list(layout) for layout in self.layouts]),
            "capacity_gib": self.capacity_gib,
            "contention": self.contention,
        }

    @property
    def capacity_bytes(self) -> int | None:
        return (None if self.capacity_gib is None
                else int(self.capacity_gib * 2**30))
