"""End-to-end throughput measurement on a modeled cluster.

This is the harness behind Figs. 9–12: pick a scheme and a parallel
layout (``D`` pipelines of ``P`` devices each), lower the model onto the
cluster's GPUs, simulate one training iteration, gate it against GPU
memory, and convert the makespan into sequences/second including the
data-parallel gradient all-reduce.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..actions.resources import StageResources
from ..cluster.comm_model import CommModel, Transfer
from ..cluster.presets import Cluster
from ..cluster.topology import ring_transfer_chain
from ..config import PipelineConfig, RunConfig
from ..errors import ConfigError, OutOfMemoryError
from ..models.costs import stage_costs
from ..models.spec import ModelSpec
from ..runtime.costs import ConcreteCosts
from ..runtime.memory import static_memory
from ..runtime.metrics import bubble_stats
from ..runtime.simulator import simulate
from ..schedules.factory import build_schedule


def _pipeline_comm(cluster: Cluster, pipeline_index: int, p: int) -> CommModel:
    """Comm model seen by one pipeline, with ranks offset into the cluster.

    Pipelines are laid out in contiguous rank blocks: pipeline ``i``
    owns cluster ranks ``[i*P, (i+1)*P)`` — the standard Megatron
    layout that keeps pipeline P2P local and spreads DP across blocks.
    """
    base = pipeline_index * p

    class _Shifted(CommModel):
        def __init__(self) -> None:
            super().__init__(topology=cluster.topology)

        def transfer_time(self, transfer: Transfer) -> float:
            return super().transfer_time(
                Transfer(transfer.src + base, transfer.dst + base,
                         transfer.nbytes)
            )

    return _Shifted()


@dataclass
class ThroughputResult:
    """One measured configuration."""

    config: PipelineConfig
    cluster_name: str
    model_name: str
    seq_per_s: float | None          # None ⇔ OOM
    bubble_ratio: float | None
    peak_mem_bytes: float | None
    iteration_s: float | None
    oom_device: int | None = None
    #: True when the static residency bytes alone exceeded capacity —
    #: the cell was rejected in O(P) without entering the event loop.
    #: OOM cells with ``False`` were aborted mid-simulation instead.
    statically_pruned: bool = False

    @property
    def oom(self) -> bool:
        return self.seq_per_s is None

    def describe(self) -> str:
        if self.oom:
            tag = "static" if self.statically_pruned else "runtime"
            return (f"{self.config.describe():40s} {self.cluster_name:5s} "
                    f"OOM (device {self.oom_device}, {tag})")
        return (f"{self.config.describe():40s} {self.cluster_name:5s} "
                f"{self.seq_per_s:6.2f} seq/s  "
                f"bubble={self.bubble_ratio * 100:4.1f}%  "
                f"peak={self.peak_mem_bytes / 2**30:5.1f} GiB")


def static_oom_result(cfg: PipelineConfig, cluster: Cluster,
                      model: ModelSpec, schedule, costs,
                      capacity: int) -> ThroughputResult | None:
    """The O(P) static-memory pre-check, as a pruned result.

    Returns a ``statically_pruned`` OOM :class:`ThroughputResult` for
    the lowest device whose resident weights alone exceed ``capacity``,
    or ``None`` when every device's static footprint fits (the cell
    must then be simulated to get a verdict).  Shared by the throughput
    and hybrid harnesses so the pruned-result shape cannot drift.
    """
    static = static_memory(schedule, costs)
    for device in sorted(static):
        if static[device] > capacity:
            return ThroughputResult(
                config=cfg, cluster_name=cluster.name,
                model_name=model.name, seq_per_s=None, bubble_ratio=None,
                peak_mem_bytes=static[device], iteration_s=None,
                oom_device=device, statically_pruned=True,
            )
    return None


def dp_allreduce_seconds(cluster: Cluster, p: int, d: int,
                         grad_bytes_per_device: float) -> float:
    """Ring all-reduce of one device's gradient shard across D replicas.

    DP groups are the ranks ``{g, g+P, g+2P, ...}``; the slowest group
    member bounds the iteration.  Returns 0 for D == 1.
    """
    if d <= 1:
        return 0.0
    worst = 0.0
    for g in range(p):
        ranks = [g + i * p for i in range(d)]
        worst = max(worst, ring_transfer_chain(
            cluster.topology, ranks, grad_bytes_per_device
        ))
    return worst


def measure_throughput(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    p: int,
    num_microbatches: int,
    d: int = 1,
    w: int = 1,
    microbatch_size: int = 1,
    run: RunConfig | None = None,
    enforce_memory: bool = True,
    dp_overlap: float = 0.9,
    capacity_bytes: int | None = None,
) -> ThroughputResult:
    """Simulate one configuration and return sequences/second (or OOM).

    ``dp_overlap`` is the fraction of the data-parallel gradient
    all-reduce hidden under backward compute (bucketed all-reduce as in
    Megatron/DeepSpeed); only the remainder extends the iteration.

    Memory is enforced *live*: statically-infeasible cells (weights +
    grads + optimizer alone exceed capacity) are rejected in O(P)
    before any simulation, and all other OOM cells abort the event
    loop at a violating allocation — OOM verdicts never pay a full
    simulation.  ``capacity_bytes`` overrides the cluster device's
    memory (a ``--capacity-gib`` what-if).
    """
    if not (0.0 <= dp_overlap <= 1.0):
        raise ConfigError("dp_overlap must be in [0, 1]")
    if p * d > cluster.num_devices:
        raise ConfigError(
            f"layout P={p} x D={d} exceeds cluster of {cluster.num_devices}"
        )
    capacity = (cluster.device.memory_bytes if capacity_bytes is None
                else capacity_bytes)
    cfg = PipelineConfig(
        scheme=scheme,
        num_devices=p,
        num_microbatches=num_microbatches,
        num_waves=w,
        data_parallel=d,
        microbatch_size=microbatch_size,
    )
    schedule = build_schedule(cfg)
    costs = stage_costs(model, schedule.num_stages, cluster.device,
                        microbatch_size)
    if enforce_memory:
        pruned = static_oom_result(cfg, cluster, model, schedule, costs,
                                   capacity)
        if pruned is not None:
            return pruned
    oracle = ConcreteCosts(costs, _pipeline_comm(cluster, 0, p))
    try:
        result = simulate(
            schedule, oracle, run,
            resources=StageResources.from_stage_costs(costs),
            capacity_bytes=capacity if enforce_memory else None,
        )
    except OutOfMemoryError as exc:
        return ThroughputResult(
            config=cfg, cluster_name=cluster.name, model_name=model.name,
            seq_per_s=None, bubble_ratio=None,
            peak_mem_bytes=float(exc.peak_bytes),
            iteration_s=None, oom_device=exc.device,
        )
    stats = bubble_stats(result.timeline)
    mem = result.memory
    # Gradients are fp32 shards of the device's parameters (weight_bytes
    # bundles params+grads+optimizer at 16 B/param; grads alone are 4).
    grad_bytes = max(
        sum(costs.weight_bytes[stage]
            for stage, _r in schedule.placement.stages_on(dev))
        for dev in range(p)
    ) / 16.0 * 4.0
    overhead = dp_allreduce_seconds(cluster, p, d, grad_bytes)
    iteration = result.makespan + overhead * (1.0 - dp_overlap)
    seqs = cfg.num_microbatches * cfg.microbatch_size * d
    return ThroughputResult(
        config=cfg,
        cluster_name=cluster.name,
        model_name=model.name,
        seq_per_s=seqs / iteration,
        bubble_ratio=stats.bubble_ratio,
        peak_mem_bytes=mem.highest_peak,
        iteration_s=iteration,
    )
