"""End-to-end throughput measurement on a modeled cluster.

This is the harness behind Figs. 9–12: pick a scheme and a parallel
layout (``D`` pipelines of ``P`` devices each), lower the model onto the
cluster's GPUs, compile the schedule **plus its data-parallel gradient
collectives** into one Program, simulate the iteration, gate it against
GPU memory, and convert the result into sequences/second.

Gradient-sync overlap is **measured, not assumed**: the compiler
inserts a ring all-reduce after each stage's last backward
(:func:`repro.actions.with_gradient_sync`), the event core schedules
its ``2 * (D - 1)`` chunk steps against the same link model as the
pipeline P2P, and the iteration ends when both compute and the last
collective finish.  The closed-form ring model
(:func:`dp_allreduce_seconds`) is retained as an upper-bound
cross-check and as the explicitly-named ``overlap="model"`` analytic
fallback.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..actions.collectives import with_gradient_sync
from ..actions.lowering import ExecutablePlan
from ..actions.ops import CollectiveKind
from ..actions.program import Program, compile_program
from ..actions.resources import StageResources
from .. import profiling
from ..cluster.comm_model import CommModel, Transfer
from ..cluster.presets import Cluster
from ..cluster.topology import ring_transfer_chain
from ..config import PipelineConfig, RunConfig
from ..errors import ConfigError, OutOfMemoryError
from ..models.costs import StageCosts, stage_costs
from ..models.spec import ModelSpec
from ..runtime.batched import execute_many
from ..runtime.costs import ConcreteCosts
from ..runtime.memory import static_memory
from ..runtime.metrics import bubble_stats
from ..runtime.simulator import (
    SimResult,
    sim_result_from_events,
    simulate_program,
)
from ..schedules.base import Schedule
from ..schedules.factory import build_schedule
from .plans import PlanEntry, plan_cache

#: gradient-sync fraction the *analytic* fallback assumes is hidden
#: under backward compute (bucketed all-reduce as in Megatron /
#: DeepSpeed).  Only ``overlap="model"`` reads this; the default
#: ``overlap="simulated"`` path measures the fraction from events.
ANALYTIC_DP_OVERLAP = 0.9

#: accepted values of the ``overlap`` knob
OVERLAP_MODES = ("simulated", "model")


def _pipeline_comm(cluster: Cluster, pipeline_index: int, p: int) -> CommModel:
    """Comm model seen by one pipeline, with ranks offset into the cluster.

    Pipelines are laid out in contiguous rank blocks: pipeline ``i``
    owns cluster ranks ``[i*P, (i+1)*P)`` — the standard Megatron
    layout that keeps pipeline P2P local and spreads DP across blocks.
    """
    base = pipeline_index * p

    class _Shifted(CommModel):
        def __init__(self) -> None:
            super().__init__(topology=cluster.topology)

        def transfer_time(self, transfer: Transfer) -> float:
            return super().transfer_time(
                Transfer(transfer.src + base, transfer.dst + base,
                         transfer.nbytes)
            )

    return _Shifted()


@dataclass
class ThroughputResult:
    """One measured configuration."""

    config: PipelineConfig
    cluster_name: str
    model_name: str
    seq_per_s: float | None          # None ⇔ OOM
    bubble_ratio: float | None
    peak_mem_bytes: float | None
    iteration_s: float | None
    oom_device: int | None = None
    #: True when the static residency bytes alone exceeded capacity —
    #: the cell was rejected in O(P) without entering the event loop.
    #: OOM cells with ``False`` were aborted mid-simulation instead.
    statically_pruned: bool = False
    #: gradient-sync seconds the busiest device spends in ring steps
    #: (0 for D == 1)
    sync_s: float = 0.0
    #: gradient-sync seconds that extend the iteration past the compute
    #: makespan — the part pipeline bubbles could *not* hide
    sync_exposed_s: float = 0.0
    #: fraction of ``sync_s`` hidden under compute; None when there is
    #: no sync to hide (D == 1)
    sync_overlap: float | None = None
    #: closed-form ring upper bound (``dp_allreduce_seconds``), kept as
    #: a cross-check against the simulated ``sync_s``
    sync_model_s: float = 0.0
    #: "simulated" (overlap measured from events) or "model" (analytic
    #: ``ANALYTIC_DP_OVERLAP`` fallback)
    overlap_mode: str = "simulated"

    @property
    def oom(self) -> bool:
        return self.seq_per_s is None

    def describe(self) -> str:
        if self.oom:
            tag = "static" if self.statically_pruned else "runtime"
            return (f"{self.config.describe():40s} {self.cluster_name:5s} "
                    f"OOM (device {self.oom_device}, {tag})")
        text = (f"{self.config.describe():40s} {self.cluster_name:5s} "
                f"{self.seq_per_s:6.2f} seq/s  "
                f"bubble={self.bubble_ratio * 100:4.1f}%  "
                f"peak={self.peak_mem_bytes / 2**30:5.1f} GiB")
        if self.sync_overlap is not None:
            text += f"  sync-overlap={self.sync_overlap * 100:4.1f}%"
        return text


def static_oom_result(cfg: PipelineConfig, cluster: Cluster,
                      model: ModelSpec, schedule, costs,
                      capacity: int) -> ThroughputResult | None:
    """The O(P) static-memory pre-check, as a pruned result.

    Returns a ``statically_pruned`` OOM :class:`ThroughputResult` for
    the lowest device whose resident weights alone exceed ``capacity``,
    or ``None`` when every device's static footprint fits (the cell
    must then be simulated to get a verdict).  Shared by the throughput
    and hybrid harnesses so the pruned-result shape cannot drift.
    """
    static = static_memory(schedule, costs)
    for device in sorted(static):
        if static[device] > capacity:
            return ThroughputResult(
                config=cfg, cluster_name=cluster.name,
                model_name=model.name, seq_per_s=None, bubble_ratio=None,
                peak_mem_bytes=static[device], iteration_s=None,
                oom_device=device, statically_pruned=True,
            )
    return None


def dp_rank_groups(cluster: Cluster, p: int, d: int,
                   spacing: int = 1) -> dict[int, tuple[int, ...]]:
    """Global-rank DP ring for every in-pipeline device.

    Device ``g`` of pipeline 0 sits at cluster rank ``g * spacing``
    (``spacing`` is the tensor-parallel degree in hybrid layouts) and
    reduces with its mirrors one pipeline block — ``p * spacing`` ranks
    — apart.  Raises :class:`~repro.errors.ConfigError` when any group
    member falls outside the cluster, instead of letting the rank leak
    surface later as a raw networkx routing error.
    """
    groups: dict[int, tuple[int, ...]] = {}
    for g in range(p):
        ranks = tuple(g * spacing + i * p * spacing for i in range(d))
        for rank in ranks:
            if rank >= cluster.num_devices:
                raise ConfigError(
                    f"DP group {list(ranks)} of pipeline device {g} "
                    f"references rank {rank}, but cluster "
                    f"{cluster.name} has {cluster.num_devices} devices "
                    f"(layout P={p} x D={d}"
                    + (f" x TP={spacing}" if spacing > 1 else "") + ")"
                )
        groups[g] = ranks
    return groups


def dp_allreduce_seconds(cluster: Cluster, p: int, d: int,
                         grad_bytes_per_device: float) -> float:
    """Closed-form ring all-reduce of one device's gradient shard.

    DP groups are the ranks ``{g, g+P, 2P+g, ...}``; the slowest group
    bounds the iteration.  Returns 0 for D == 1.  This is the analytic
    upper bound the simulated path cross-checks against (and the whole
    story under ``overlap="model"``).
    """
    if d <= 1:
        return 0.0
    if p * d > cluster.num_devices:
        raise ConfigError(
            f"DP layout P={p} x D={d} references rank {p * d - 1}, but "
            f"cluster {cluster.name} has {cluster.num_devices} devices"
        )
    worst = 0.0
    for g in range(p):
        ranks = [g + i * p for i in range(d)]
        worst = max(worst, ring_transfer_chain(
            cluster.topology, ranks, grad_bytes_per_device
        ))
    return worst


def stage_grad_bytes(costs: StageCosts) -> dict[int, float]:
    """fp32 gradient bytes per stage.

    ``weight_bytes`` bundles params+grads+optimizer at 16 B/param;
    the all-reduced gradients alone are 4 B/param.
    """
    return {s: w / 16.0 * 4.0 for s, w in enumerate(costs.weight_bytes)}


def compile_cluster_program(
    schedule: Schedule,
    cluster: Cluster,
    costs: StageCosts,
    d: int = 1,
    run: RunConfig | None = None,
    spacing: int = 1,
) -> Program:
    """Lower a schedule onto a cluster, gradient collectives included.

    The one compilation path the throughput harness, the hybrid
    harness, and ``repro trace --dp`` share: compile the schedule with
    byte-accurate tensors and memory resources, then — for ``d > 1`` —
    insert the per-stage DP gradient rings over their concrete cluster
    rank groups (``spacing`` is the tensor-parallel degree of hybrid
    layouts).
    """
    run = run or RunConfig()
    program = compile_program(
        schedule,
        prefetch=run.prefetch,
        batch_cross_comm=run.batch_cross_comm,
        add_step=False,
        boundary_bytes=float(costs.boundary_bytes),
        resources=StageResources.from_stage_costs(costs),
    )
    if d > 1:
        groups = dp_rank_groups(cluster, schedule.num_devices, d,
                                spacing=spacing)
        program = with_gradient_sync(program, groups,
                                     stage_grad_bytes(costs))
    return program


def sync_accounting(result: SimResult) -> tuple[float, float, float | None]:
    """``(sync_s, exposed_s, overlap)`` measured from simulator events.

    ``sync_s`` is the busiest device's total gradient-ring seconds,
    ``exposed_s`` the iteration extension past ``result.busy_end`` (the
    end of compute plus blocking communication — trailing TP
    all-reduces are *busy* time, not sync exposure), and ``overlap``
    the hidden fraction ``1 - exposed / sync`` — the number the paper's
    Sec. 3.2 claim is about.
    """
    per_device: dict[int, float] = {}
    for c in result.collectives:
        if c.op.kind is CollectiveKind.GRAD_SYNC:
            per_device[c.device] = per_device.get(c.device, 0.0) + c.duration
    if not per_device:
        return 0.0, 0.0, None
    sync_s = max(per_device.values())
    exposed = max(0.0, result.sync_done() - result.busy_end)
    overlap = 1.0 - exposed / sync_s if sync_s > 0 else None
    return sync_s, exposed, overlap


def throughput_from_simulation(
    cfg: PipelineConfig,
    cluster: Cluster,
    model: ModelSpec,
    schedule: Schedule,
    costs: StageCosts,
    result: SimResult,
    *,
    ring_p: int,
    overlap: str,
) -> ThroughputResult:
    """Fold one simulated iteration into a :class:`ThroughputResult`.

    The single accounting tail the flat and hybrid harnesses share —
    bubble stats, the closed-form ring cross-check over ``ring_p``
    in-ring devices (``P`` flat, ``P * TP`` hybrid), the
    simulated-vs-analytic overlap branch, and the iteration =
    ``busy_end + exposed sync`` conversion — so the two paths cannot
    drift apart.
    """
    d = cfg.data_parallel
    stats = bubble_stats(result.timeline)
    mem = result.memory
    per_stage = stage_grad_bytes(costs)
    grad_bytes = max(
        sum(per_stage[stage]
            for stage, _r in schedule.placement.stages_on(dev))
        for dev in range(schedule.num_devices)
    )
    sync_model = dp_allreduce_seconds(cluster, ring_p, d, grad_bytes)
    if overlap == "simulated":
        sync_s, exposed, frac = sync_accounting(result)
    else:
        sync_s = sync_model
        exposed = sync_model * (1.0 - ANALYTIC_DP_OVERLAP)
        frac = ANALYTIC_DP_OVERLAP if d > 1 else None
    iteration = result.busy_end + exposed
    seqs = cfg.num_microbatches * cfg.microbatch_size * d
    return ThroughputResult(
        config=cfg,
        cluster_name=cluster.name,
        model_name=model.name,
        seq_per_s=seqs / iteration,
        bubble_ratio=stats.bubble_ratio,
        peak_mem_bytes=mem.highest_peak,
        iteration_s=iteration,
        sync_s=sync_s,
        sync_exposed_s=exposed,
        sync_overlap=frac,
        sync_model_s=sync_model,
        overlap_mode=overlap,
    )


def flat_plan_key(scheme: str, p: int, num_microbatches: int,
                  microbatch_size: int, d: int, sync_d: int, w: int,
                  run: RunConfig, model: ModelSpec) -> tuple:
    """The structural plan-cache key of one flat measurement.

    Everything the compiled program + lowered plan depend on; the
    cluster and the capacity knob are deliberately absent — devices,
    links and enforcement are per-call concerns resolved at re-time /
    execute, never compiled into the plan (see :mod:`.plans`).  Cells
    with equal keys are the lanes the batched measurement path stacks.
    """
    return ("flat", scheme, p, num_microbatches, microbatch_size, d,
            sync_d, w, run.prefetch, run.batch_cross_comm, model)


def measure_throughput(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    p: int,
    num_microbatches: int,
    d: int = 1,
    w: int = 1,
    microbatch_size: int = 1,
    run: RunConfig | None = None,
    enforce_memory: bool = True,
    overlap: str = "simulated",
    capacity_bytes: int | None = None,
) -> ThroughputResult:
    """Simulate one configuration and return sequences/second (or OOM).

    ``overlap`` selects how data-parallel gradient synchronisation is
    charged.  ``"simulated"`` (the default) compiles the per-stage ring
    all-reduces into the program and lets the event core measure how
    much of them pipeline bubbles hide; ``"model"`` is the analytic
    fallback — closed-form ring time discounted by the assumed
    :data:`ANALYTIC_DP_OVERLAP` fraction — kept for cross-checks and
    for comparison with the paper's own estimates.

    Memory is enforced *live*: statically-infeasible cells (weights +
    grads + optimizer alone exceed capacity) are rejected in O(P)
    before any simulation, and all other OOM cells abort the event
    loop at a violating allocation — OOM verdicts never pay a full
    simulation.  ``capacity_bytes`` overrides the cluster device's
    memory (a ``--capacity-gib`` what-if).
    """
    if overlap not in OVERLAP_MODES:
        raise ConfigError(
            f"unknown overlap mode {overlap!r}; expected one of "
            f"{OVERLAP_MODES}"
        )
    if p * d > cluster.num_devices:
        raise ConfigError(
            f"layout P={p} x D={d} exceeds cluster of {cluster.num_devices}"
        )
    run = run or RunConfig()
    capacity = (cluster.device.memory_bytes if capacity_bytes is None
                else capacity_bytes)
    cfg = PipelineConfig(
        scheme=scheme,
        num_devices=p,
        num_microbatches=num_microbatches,
        num_waves=w,
        data_parallel=d,
        microbatch_size=microbatch_size,
    )
    sync_d = d if overlap == "simulated" else 1
    plans = plan_cache()
    key = flat_plan_key(scheme, p, num_microbatches, microbatch_size,
                        d, sync_d, w, run, model)
    entry = plans.get(key)
    with profiling.phase("build"):
        schedule = entry.schedule if entry is not None else \
            build_schedule(cfg)
        costs = stage_costs(model, schedule.num_stages, cluster.device,
                            microbatch_size)
    if enforce_memory:
        pruned = static_oom_result(cfg, cluster, model, schedule, costs,
                                   capacity)
        if pruned is not None:
            return pruned
    with profiling.phase("lower"):
        if entry is None:
            program = compile_cluster_program(schedule, cluster, costs,
                                              d=sync_d, run=run)
            entry = plans.put(key, PlanEntry(
                schedule, program, ExecutablePlan.lower(program)))
        plan = entry.bound_plan(
            (cluster, costs, p),
            lambda: ConcreteCosts(costs, _pipeline_comm(cluster, 0, p)))
    try:
        result = simulate_program(
            entry.program, plan.costs, run, schedule=schedule, plan=plan,
            capacity_bytes=capacity if enforce_memory else None,
        )
    except OutOfMemoryError as exc:
        return ThroughputResult(
            config=cfg, cluster_name=cluster.name, model_name=model.name,
            seq_per_s=None, bubble_ratio=None,
            peak_mem_bytes=float(exc.peak_bytes),
            iteration_s=None, oom_device=exc.device,
        )
    return throughput_from_simulation(cfg, cluster, model, schedule,
                                      costs, result, ring_p=p,
                                      overlap=overlap)


@dataclass(frozen=True)
class ThroughputRequest:
    """One cell of a batched measurement (flat harness, TP = 1).

    Field-for-field the keyword surface of :func:`measure_throughput`;
    a list of these is what :func:`measure_throughput_batch` groups by
    structural plan key and executes in lockstep.
    """

    scheme: str
    cluster: Cluster
    model: ModelSpec
    p: int
    num_microbatches: int
    d: int = 1
    w: int = 1
    microbatch_size: int = 1
    enforce_memory: bool = True
    overlap: str = "simulated"
    capacity_bytes: int | None = None
    #: arbitrate shared wires for this cell even when the batch-wide
    #: RunConfig leaves contention off (ORed with ``run.contention``)
    contention: bool = False

    def config(self) -> PipelineConfig:
        return PipelineConfig(
            scheme=self.scheme,
            num_devices=self.p,
            num_microbatches=self.num_microbatches,
            num_waves=self.w,
            data_parallel=self.d,
            microbatch_size=self.microbatch_size,
        )


def measure_throughput_batch(
    requests: list[ThroughputRequest],
    run: RunConfig | None = None,
) -> list[ThroughputResult | ConfigError]:
    """Measure many cells at once, batching structure-sharing lanes.

    Outcomes are returned in request order; a cell
    :func:`measure_throughput` would reject raises nothing here — its
    :class:`~repro.errors.ConfigError` is returned *as the outcome* so
    one infeasible cell cannot abort the batch (the sweep engine turns
    it into the same infeasible record a raise would have).

    Cells sharing a :func:`flat_plan_key` share one schedule build and
    one compile/lower (through the plan cache); *all* groups' lanes
    then go through a single :func:`repro.runtime.batched.execute_many`
    call, which re-groups them by control-flow congruence — so cells of
    *different* plan keys whose structures agree (e.g. two models on
    one layout) still stack into one lockstep batch.  Per lane the only
    remaining work is the cost re-time, the lazy duration fill and the
    lean result fold.  Every produced :class:`ThroughputResult` is
    exactly what a scalar :func:`measure_throughput` of that cell
    returns — pinned by the sweep parity tests and the
    ``fig09_batched`` benchmark's cross-check.
    """
    run = run or RunConfig()
    outcomes: list[ThroughputResult | ConfigError | None] = \
        [None] * len(requests)
    groups: dict[tuple, list[int]] = {}
    for i, req in enumerate(requests):
        if req.overlap not in OVERLAP_MODES:
            outcomes[i] = ConfigError(
                f"unknown overlap mode {req.overlap!r}; expected one of "
                f"{OVERLAP_MODES}"
            )
            continue
        if req.p * req.d > req.cluster.num_devices:
            outcomes[i] = ConfigError(
                f"layout P={req.p} x D={req.d} exceeds cluster of "
                f"{req.cluster.num_devices}"
            )
            continue
        sync_d = req.d if req.overlap == "simulated" else 1
        key = flat_plan_key(req.scheme, req.p, req.num_microbatches,
                            req.microbatch_size, req.d, sync_d, req.w,
                            run, req.model)
        groups.setdefault(key, []).append(i)

    plans = plan_cache()
    #: items for the global execute_many calls, partitioned by the
    #: lane's effective contention mode (plan structure is shared, the
    #: event core is not)
    items_by: dict[bool, list[tuple]] = {False: [], True: []}
    #: per-group fold context: (entry, schedule, group_cfg, lane_ids,
    #: live positions, lane_costs, per-lane (contention, index) slots)
    pending: list[tuple] = []
    for key, lane_ids in groups.items():
        head = requests[lane_ids[0]]
        sync_d = head.d if head.overlap == "simulated" else 1
        label = (f"{head.scheme}/{head.model.name} P{head.p} D{head.d} "
                 f"W{head.w} B{head.num_microbatches}"
                 f"x{head.microbatch_size} [{len(lane_ids)} lanes]")
        # every structural field config() reads is part of the group key
        group_cfg = head.config()
        with profiling.cell(label):
            entry = plans.get(key)
            with profiling.phase("build"):
                try:
                    schedule = entry.schedule if entry is not None else \
                        build_schedule(group_cfg)
                except ConfigError as exc:
                    # structural rejection: the verdict (and message)
                    # is identical for every lane of the group
                    for i in lane_ids:
                        outcomes[i] = exc
                    continue
                lane_costs = [
                    stage_costs(requests[i].model, schedule.num_stages,
                                requests[i].cluster.device,
                                requests[i].microbatch_size)
                    for i in lane_ids
                ]
            live: list[int] = []     # positions into lane_ids
            for pos, i in enumerate(lane_ids):
                req = requests[i]
                if not req.enforce_memory:
                    live.append(pos)
                    continue
                capacity = (req.cluster.device.memory_bytes
                            if req.capacity_bytes is None
                            else req.capacity_bytes)
                pruned = static_oom_result(group_cfg, req.cluster,
                                           req.model, schedule,
                                           lane_costs[pos], capacity)
                if pruned is not None:
                    outcomes[i] = pruned
                else:
                    live.append(pos)
            if not live:
                continue
            with profiling.phase("lower"):
                if entry is None:
                    pos = live[0]
                    program = compile_cluster_program(
                        schedule, requests[lane_ids[pos]].cluster,
                        lane_costs[pos], d=sync_d, run=run)
                    entry = plans.put(key, PlanEntry(
                        schedule, program, ExecutablePlan.lower(program)))
                slots: list[tuple[bool, int]] = []
                for pos in live:
                    req = requests[lane_ids[pos]]
                    costs = lane_costs[pos]
                    plan = entry.bound_plan(
                        (req.cluster, costs, req.p),
                        lambda req=req, costs=costs: ConcreteCosts(
                            costs, _pipeline_comm(req.cluster, 0, req.p)))
                    capacity = None
                    if req.enforce_memory:
                        capacity = (req.cluster.device.memory_bytes
                                    if req.capacity_bytes is None
                                    else req.capacity_bytes)
                    mode = run.contention or req.contention
                    slots.append((mode, len(items_by[mode])))
                    items_by[mode].append((plan, capacity))
            pending.append((entry, schedule, group_cfg, lane_ids, live,
                            lane_costs, slots))

    batches: dict[bool, object] = {}
    n_lanes = len(items_by[False]) + len(items_by[True])
    if n_lanes:
        with profiling.cell(f"simulate [{n_lanes} lanes]"):
            with profiling.phase("simulate"):
                for mode, items in items_by.items():
                    if items:
                        mode_run = run if mode == run.contention else \
                            replace(run, contention=mode)
                        batches[mode] = execute_many(items, mode_run,
                                                     detail="lean")
    for entry, schedule, group_cfg, lane_ids, live, lane_costs, slots \
            in pending:
        for out_pos, pos in enumerate(live):
            i = lane_ids[pos]
            req = requests[i]
            mode, idx = slots[out_pos]
            batch = batches[mode]
            err = batch.errors[idx]
            if err is not None:
                outcomes[i] = ThroughputResult(
                    config=group_cfg, cluster_name=req.cluster.name,
                    model_name=req.model.name, seq_per_s=None,
                    bubble_ratio=None,
                    peak_mem_bytes=float(err.peak_bytes),
                    iteration_s=None, oom_device=err.device,
                )
                continue
            sim = sim_result_from_events(entry.program,
                                         batch.results[idx],
                                         schedule=schedule)
            outcomes[i] = throughput_from_simulation(
                group_cfg, req.cluster, req.model, schedule,
                lane_costs[pos], sim, ring_p=req.p,
                overlap=req.overlap)
    return outcomes
