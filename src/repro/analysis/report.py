"""Fixed-width table rendering for benchmark output.

Benches print "paper vs measured" rows; this keeps them aligned and
consistent without pulling in a plotting stack.
"""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str | None = None) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "OOM"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def percent(value: float | None) -> str:
    return "-" if value is None else f"{value * 100:.1f}%"


def ratio_vs(new: float | None, old: float | None) -> str:
    """Speedup of ``new`` over ``old`` as a signed percentage string."""
    if not new or not old:
        return "-"
    return f"{(new / old - 1) * 100:+.1f}%"
