"""The analysis-level plan cache: one lowering, many cost bindings.

A sweep grid typically crosses a handful of *structural* axes (scheme,
pipeline depth, micro-batch count, DP/TP widths, waves, prefetch,
recompute/capacity knobs) with *cost-only* axes (which cluster's
devices and links time the program).  Before this cache every cell paid
the full schedule → compile → collective-annotation → lowering chain;
now structurally identical cells share one compiled
:class:`~repro.actions.program.Program` and one
:class:`~repro.actions.lowering.ExecutablePlan`, and a cost-only cell
merely **re-times** the cached plan against its oracle
(:meth:`ExecutablePlan.retime`) before executing.

Safety of sharing: everything a compiled program carries — action
streams, dependency edges, tensor/gradient byte sizes, resource deltas,
collective groups — derives from the model spec and the layout shape,
never from the cluster's device speeds or topology (those live in the
cost oracle, resolved at re-time) and never from the capacity knob
(enforcement is an execute-time argument).  The cache key therefore
spans ``(scheme, P, B, microbatch size, D-as-compiled, TP, W, prefetch,
batching, the ModelSpec itself)``; cluster and capacity are
deliberately absent.  Out-of-range layouts are still rejected per call
by the harness-level device-count checks, which run before the cache
is consulted.  The sharing contract is *verifiable*, not assumed:
:attr:`ExecutablePlan.plan_key` content-hashes exactly the structural
arrays execution reads, and the test suite pins that independent
compilations of one cell shape against different clusters (and
capacities) produce plans with equal keys — the oracle for every claim
in this paragraph.

The cache is process-global (each sweep worker process grows its own)
and bounded LRU — an over-capacity sweep keeps the structures it is
actively re-timing and evicts the stalest ones; ``repro sweep
--profile`` surfaces the hit/miss/eviction counters.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..actions.lowering import ExecutablePlan
from ..actions.program import Program
from ..actions.reorder import OrderEntry, reorder_program
from ..schedules.base import Schedule

#: default bound on retained plans (a full fig09-style grid is ~50)
MAX_PLANS = 256


@dataclass
class PlanEntry:
    """Everything a measurement reuses across cost-only axes."""

    schedule: Schedule
    program: Program
    plan: ExecutablePlan
    #: cost bindings of ``plan`` already produced, keyed by the cost
    #: inputs (cluster, stage costs, ring width); a repeated-pass sweep
    #: re-times each (structure, cluster) pair once and thereafter
    #: reuses the bound plan — including its lazily filled duration
    #: column.  Evicted with the entry.
    bindings: dict = field(default_factory=dict)
    #: serializes binding fills so concurrent readers of one entry (the
    #: serving layer's worker threads) agree on a single bound plan per
    #: key instead of racing duplicate re-times
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def bound_plan(self, key: tuple, oracle_factory) -> ExecutablePlan:
        """The plan re-timed under the oracle ``key`` stands for.

        ``oracle_factory`` builds the cost oracle only on a binding
        miss; the key must capture every input the oracle's answers
        depend on (the measurement layer uses ``(cluster, stage costs,
        ring P)`` — see :func:`repro.analysis.throughput.measure_throughput`).
        Deterministic oracles make the reuse exact: re-timing the same
        structure under an equal oracle yields identical columns.
        """
        with self._lock:
            plan = self.bindings.get(key)
            if plan is None:
                plan = self.plan.retime(oracle_factory())
                self.bindings[key] = plan
            return plan


@dataclass
class PlanCache:
    """Bounded LRU map from structural cell keys to plan entries.

    Insertion order of the backing dict doubles as recency order: a hit
    re-inserts its entry at the back, so eviction (popping the front)
    always discards the least recently used structure.  ``maxsize`` is
    per-instance configurable; ``evictions`` counts entries dropped to
    enforce it.

    All mutation (the LRU re-insert on ``get``, eviction on ``put``,
    the hit/miss/eviction counters) happens under one lock, so the
    cache is safe to share across threads — the serving layer's handler
    threads and its micro-batch dispatcher hit this very instance
    concurrently.  The invariants the stress test pins: every ``get``
    bumps exactly one counter, ``len`` never exceeds ``maxsize``, and
    ``insertions == len + evictions`` at any quiescent point.
    """

    maxsize: int = MAX_PLANS
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: ``put`` calls that added a key not already present (re-puts of a
    #: live key are not insertions); with the lock held this makes the
    #: eviction accounting exactly checkable
    insertions: int = 0
    _store: dict = field(default_factory=dict)
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False, compare=False)

    def get(self, key: tuple) -> PlanEntry | None:
        """The cached entry for ``key`` (counts a hit/miss, bumps LRU)."""
        with self._lock:
            found = self._store.pop(key, None)
            if found is not None:
                self._store[key] = found  # re-insert: most recently used
                self.hits += 1
            else:
                self.misses += 1
            return found

    def put(self, key: tuple, entry: PlanEntry) -> PlanEntry:
        """Retain ``entry`` under ``key``, evicting the LRU past maxsize."""
        with self._lock:
            if self._store.pop(key, None) is None:
                self.insertions += 1
            self._store[key] = entry
            while len(self._store) > self.maxsize:
                self._store.pop(next(iter(self._store)))
                self.evictions += 1
            return entry

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.insertions = 0

    def describe(self) -> str:
        with self._lock:
            return (f"plan cache: {len(self._store)}/{self.maxsize} plans, "
                    f"{self.hits} hits, {self.misses} misses, "
                    f"{self.evictions} evictions")


def candidate_plan(
    entry: PlanEntry,
    orders: Mapping[int, Sequence[OrderEntry]],
    costs=None,
) -> ExecutablePlan:
    """A cost-bound plan for a *reordering* of a cached entry's program.

    The schedule-synthesis searcher evaluates thousands of candidate
    orderings against one structural cell; this is the cheap path it
    rides.  The candidate program shares ``ops``/``deps``/byte facts
    with the base (see :func:`repro.actions.reorder.reorder_program`),
    so its lowered compute table — built from ``program.ops`` iteration
    order — is identical index-for-index, and when the oracle is the
    very one the base plan is bound to, the candidate can adopt the
    base's lazily-filled ``comp_cost`` column outright: every duration
    the oracle has ever resolved for this cell is reused by every
    later candidate instead of being re-queried per plan.

    ``costs`` defaults to the base plan's bound oracle; pass an oracle
    explicitly to time candidates against a different cluster (no
    column sharing then).  An unbound base with no ``costs`` yields an
    unbound candidate (still useful for ``plan_key``).
    """
    program = reorder_program(entry.program, orders)
    plan = ExecutablePlan.lower(program)
    oracle = costs if costs is not None else entry.plan.costs
    if oracle is None:
        return plan
    plan = plan.retime(oracle)
    if entry.plan.bound and entry.plan.costs is oracle:
        plan.comp_cost = entry.plan.comp_cost
    return plan


_CACHE = PlanCache()


def plan_cache() -> PlanCache:
    """The process-global cache the measurement harnesses share."""
    return _CACHE
