"""Analytic bubble-ratio formulas (paper Sec. 3.4 and Fig. 1).

Conventions follow Table 1: ``T_F``/``T_B`` are the forward/backward
time of one device-worth of layers, ``T_C`` one P2P transfer, ``P``
devices, ``B`` micro-batches, ``W`` waves.  The paper's theoretical
figures assume ``B = P`` and ``T_B = 2 T_F``; the functions below keep
``B`` explicit where the classic derivations have it.

``hanayo_bubble_ratio`` is Equation (1) verbatim; the other schemes use
the closed forms from their original papers (GPipe/DAPPLE) or derived
from the schedule structure (GEMS, Chimera) — each derivation is in the
docstring so the numbers are auditable.
"""

from __future__ import annotations

from ..errors import ConfigError


def _check(p: int, t_f: float, t_b: float, t_c: float) -> None:
    if p < 2:
        raise ConfigError("bubble formulas need P >= 2")
    if t_f <= 0 or t_b <= 0 or t_c < 0:
        raise ConfigError("costs must be positive (t_c >= 0)")


def hanayo_bubble_ratio(p: int, w: int, t_f: float = 1.0,
                        t_b: float = 2.0, t_c: float = 0.0) -> float:
    """Equation (1) of the paper, verbatim.

    ::

             (1/W)·T_B + (1 + 2W + 2/P + (P−2)/3)·T_C
        ------------------------------------------------------------
        (P/(P−1))·T_F + (1/(2W) + P/(P−1))·T_B + ((P−2)/2 + 4W)·T_C

    With ``T_B = 2 T_F`` and ``T_C = 0`` this reduces to the paper's
    ``(2P−2) / (3PW + P − 1)``, which decreases in the wave count W.
    """
    _check(p, t_f, t_b, t_c)
    if w < 1:
        raise ConfigError("wave count must be >= 1")
    num = (1.0 / w) * t_b + (1 + 2 * w + 2.0 / p + (p - 2) / 3.0) * t_c
    den = (
        (p / (p - 1.0)) * t_f
        + (1.0 / (2 * w) + p / (p - 1.0)) * t_b
        + ((p - 2) / 2.0 + 4 * w) * t_c
    )
    return num / den


def hanayo_bubble_ratio_simplified(p: int, w: int) -> float:
    """The paper's simplified form ``(2P−2)/(3PW+P−1)``.

    Assumes ``T_B = 2 T_F`` and ``T_C = 0``.
    """
    _check(p, 1.0, 2.0, 0.0)
    return (2.0 * p - 2) / (3.0 * p * w + p - 1)


def gpipe_bubble_ratio(p: int, b: int, t_f: float = 1.0,
                       t_b: float = 2.0, t_c: float = 0.0) -> float:
    """GPipe/DAPPLE: ``(P−1)`` slots of fill plus drain.

    Device 0 idles for ``(P−1)(T_F + T_B + 2T_C)`` while the leading
    micro-batch traverses the pipeline and returns; every device is
    busy ``B (T_F + T_B)``.  DAPPLE reorders for memory, not for time,
    so it shares this ratio (Sec. 5.2: "GPipe and DAPPLE maintain
    similar throughput").
    """
    _check(p, t_f, t_b, t_c)
    if b < 1:
        raise ConfigError("B must be >= 1")
    idle = (p - 1) * (t_f + t_b + 2 * t_c)
    busy = b * (t_f + t_b)
    return idle / (idle + busy)


dapple_bubble_ratio = gpipe_bubble_ratio


def gems_bubble_ratio(p: int, t_f: float = 1.0, t_b: float = 2.0,
                      t_c: float = 0.0) -> float:
    """GEMS: at most two micro-batches in flight → bubble ``1 − 2/P``.

    Each micro-batch pair occupies the pipeline end to end
    (``P (T_F + T_B + 2 T_C)`` per pair of opposing micro-batches)
    while each device computes only ``2 (T_F + T_B)`` of it; B cancels.
    """
    _check(p, t_f, t_b, t_c)
    pair_span = p * (t_f + t_b + 2 * t_c) / 2.0
    busy = t_f + t_b
    return 1.0 - busy / pair_span


def chimera_bubble_ratio(p: int, b: int | None = None, t_f: float = 1.0,
                         t_b: float = 2.0, t_c: float = 0.0) -> float:
    """Chimera with two replicas (Li & Hoefler, 2021).

    Each direction carries ``B/2`` micro-batches; the opposing pipeline
    fills the steady-state bubbles, leaving ``(P/2 − 1)`` fill/drain
    slots exposed: idle ≈ ``(P/2 − 1)(T_F + T_B + 2 T_C)`` against busy
    ``B (T_F + T_B)`` per device.  The paper's Fig. 2 additionally
    charges the cross-communication constant ``K = P²/2 − P`` messages,
    folded in through :mod:`repro.analysis.perf_model`.
    """
    _check(p, t_f, t_b, t_c)
    if b is None:
        b = p
    idle = (p / 2.0 - 1) * (t_f + t_b + 2 * t_c)
    busy = b * (t_f + t_b)
    return idle / (idle + busy)


def interleaved_bubble_ratio(p: int, v: int, b: int | None = None,
                             t_f: float = 1.0, t_b: float = 2.0,
                             t_c: float = 0.0) -> float:
    """Megatron interleaved 1F1B with ``v`` virtual chunks per device.

    The fill/drain shrinks by the chunk count: idle ≈
    ``(P−1)(T_F+T_B)/v`` (Narayanan et al., 2021), at the price of
    ``v``-times the P2P volume (charged by the perf model, not here).
    """
    _check(p, t_f, t_b, t_c)
    if v < 1:
        raise ConfigError("chunk count must be >= 1")
    if b is None:
        b = p
    idle = (p - 1) * (t_f + t_b) / v + (p - 1) * 2 * t_c
    busy = b * (t_f + t_b)
    return idle / (idle + busy)


#: Scheme name → callable(P, B, W, t_f, t_b, t_c) used by Fig. 1 bench.
def theoretical_bubble_ratio(scheme: str, p: int, b: int | None = None,
                             w: int = 1, t_f: float = 1.0,
                             t_b: float = 2.0, t_c: float = 0.0) -> float:
    b = p if b is None else b
    if scheme in ("gpipe", "dapple"):
        return gpipe_bubble_ratio(p, b, t_f, t_b, t_c)
    if scheme == "gems":
        return gems_bubble_ratio(p, t_f, t_b, t_c)
    if scheme == "chimera":
        return chimera_bubble_ratio(p, b, t_f, t_b, t_c)
    if scheme == "interleaved":
        return interleaved_bubble_ratio(p, w, b, t_f, t_b, t_c)
    if scheme in ("hanayo", "chimera-wave"):
        w = 1 if scheme == "chimera-wave" else w
        return hanayo_bubble_ratio(p, w, t_f, t_b, t_c)
    raise ConfigError(f"no theoretical bubble formula for {scheme!r}")
