"""Analytic memory model in the units of the paper's Fig. 3 axes.

* **Weight units** ``Mw`` — one unit is a ``model / P`` slice (weights +
  grads + optimizer).  Every unidirectional scheme stores exactly one
  unit per device; the bidirectional-replica schemes (Chimera, GEMS)
  store two.
* **Activation units** ``Ma`` — one unit is the saved activations of
  one device-worth of layers for one micro-batch.  GPipe retains all
  ``B`` micro-batches; DAPPLE's warmup bounds device 0 at ``min(B, P)``;
  wave schemes admit up to ``2WP`` chunk activations per device — the
  same ``min(B, P)`` device-load budget as DAPPLE's worst device, but
  spread evenly over the pipeline instead of skewed toward device 0.

The byte-accurate numbers for Fig. 8 come from replaying real schedules
(:mod:`repro.runtime.memory`); this module is the closed-form view the
Fig. 2 comparison uses, and the two are cross-checked in tests.
"""

from __future__ import annotations

from ..errors import ConfigError


def weight_units(scheme: str) -> float:
    """Model-weight copies per device, in ``model/P`` units.

    Chimera *and* GEMS keep two model replicas resident (one per
    direction) — the byte-accurate runtime watermarks show exactly 2x
    static bytes for both, and the cross-check suite pins this module
    against them.
    """
    if scheme in ("chimera", "gems"):
        return 2.0
    if scheme in ("gpipe", "dapple", "chimera-wave", "hanayo",
                  "interleaved", "async-1f1b"):
        return 1.0
    raise ConfigError(f"unknown scheme {scheme!r}")


def activation_units(scheme: str, p: int, b: int | None = None,
                     w: int = 1) -> float:
    """Worst-device live activations, in device-load units."""
    if p < 1:
        raise ConfigError("P must be >= 1")
    b = p if b is None else b
    if scheme == "gpipe":
        return float(b)
    if scheme in ("dapple", "async-1f1b"):
        return float(min(b, p))
    if scheme == "gems":
        return 2.0 / p + 1.0 / p  # one micro-batch per direction in flight
    if scheme == "chimera":
        # Each direction admits ~P/2 micro-batches of half the device's
        # chunks (each chunk is a model/P slice but the device holds 2).
        return min(b, p) / 2.0 + 1.0
    if scheme in ("chimera-wave", "hanayo"):
        w = 1 if scheme == "chimera-wave" else w
        if w < 1:
            raise ConfigError("wave count must be >= 1")
        # The chunk-mode admission cap grants each device 2*W*P live
        # chunk activations = P device-loads — the same worst-device
        # budget as DAPPLE, but spent *uniformly* across devices (the
        # balance story of Fig. 8) instead of all on device 0.
        return float(min(b, p))
    if scheme == "interleaved":
        return (min(b, p) + 1.0) / w
    raise ConfigError(f"unknown scheme {scheme!r}")


def activation_balance_note(scheme: str) -> str:
    """Qualitative balance across devices (the Fig. 8 variance story)."""
    notes = {
        "gpipe": "balanced but uniformly high (all B micro-batches live)",
        "dapple": "strongly skewed: device 0 holds P, last device holds 1",
        "gems": "balanced and minimal, at a severe bubble cost",
        "chimera": "balanced; pays 2x weights instead",
        "chimera-wave": "balanced: every device touches early and late stages",
        "hanayo": "balanced: every device touches early and late stages",
        "interleaved": "moderately skewed",
        "async-1f1b": "skewed like dapple, plus weight stash copies",
    }
    try:
        return notes[scheme]
    except KeyError:
        raise ConfigError(f"unknown scheme {scheme!r}") from None
