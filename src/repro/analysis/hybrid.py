"""Hybrid tensor × pipeline × data parallelism (paper Secs. 1 and 6).

The paper positions pipeline parallelism inside the standard Megatron
recipe: tensor parallelism *within* a node (cheap collectives over
NVLink), pipeline parallelism *across* nodes (cheap P2P), data
parallelism on top.  This module adds the tensor-parallel dimension to
the throughput harness so that recipe can be searched and the paper's
placement claim checked quantitatively.

Tensor-parallel cost model (Megatron-style column/row splits): a degree
``t`` divides every stage's compute and weights by ``t`` and inserts
two all-reduces of the boundary tensor per layer per micro-batch
(one in the attention block, one in the MLP), executed within the TP
group's ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..actions.resources import StageResources
from ..cluster.presets import Cluster
from ..cluster.topology import ring_transfer_chain
from ..config import PipelineConfig
from ..errors import ConfigError, OutOfMemoryError
from ..models.costs import StageCosts, stage_costs
from ..models.spec import ModelSpec
from ..runtime.costs import ConcreteCosts
from ..runtime.metrics import bubble_stats
from ..runtime.simulator import simulate
from ..schedules.factory import build_schedule
from .throughput import (
    ThroughputResult,
    _pipeline_comm,
    dp_allreduce_seconds,
    static_oom_result,
)


def tp_allreduce_seconds(cluster: Cluster, tp: int,
                         nbytes: float) -> float:
    """One tensor-parallel all-reduce over the first TP group's ranks."""
    if tp <= 1:
        return 0.0
    ranks = list(range(tp))
    return ring_transfer_chain(cluster.topology, ranks, nbytes)


def apply_tensor_parallel(
    costs: StageCosts,
    cluster: Cluster,
    model: ModelSpec,
    tp: int,
    microbatch_size: int,
    layers_per_stage: float,
) -> StageCosts:
    """Shard stage costs over a TP group and charge its collectives."""
    if tp < 1:
        raise ConfigError("tensor-parallel degree must be >= 1")
    if tp == 1:
        return costs
    if tp > cluster.gpus_per_node:
        raise ConfigError(
            f"TP degree {tp} exceeds the node size "
            f"{cluster.gpus_per_node} (TP wants NVLink locality)"
        )
    ar = tp_allreduce_seconds(cluster, tp,
                              model.boundary_bytes(microbatch_size))
    # 2 all-reduces per layer per pass; backward mirrors them.
    per_stage_comm = 2.0 * layers_per_stage * ar
    return StageCosts(
        forward=tuple(f / tp + per_stage_comm for f in costs.forward),
        backward=tuple(b / tp + per_stage_comm for b in costs.backward),
        boundary_bytes=costs.boundary_bytes,
        weight_bytes=tuple(w / tp for w in costs.weight_bytes),
        activation_bytes=tuple(a / tp for a in costs.activation_bytes),
    )


@dataclass(frozen=True)
class HybridLayout:
    """A full 3D layout: tensor x pipeline x data parallel."""

    tp: int
    p: int
    d: int

    @property
    def devices(self) -> int:
        return self.tp * self.p * self.d

    def describe(self) -> str:
        return f"TP={self.tp} x PP={self.p} x DP={self.d}"


def measure_hybrid_throughput(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    layout: HybridLayout,
    num_microbatches: int,
    w: int = 1,
    microbatch_size: int = 1,
    dp_overlap: float = 0.9,
) -> ThroughputResult:
    """Throughput of one (TP, PP, DP) layout on a cluster.

    TP groups occupy contiguous in-node ranks; the pipeline's P2P hops
    then connect *node-distance* peers, which is modeled by spacing
    pipeline ranks ``tp`` apart in the cluster topology.
    """
    if layout.devices > cluster.num_devices:
        raise ConfigError(
            f"{layout.describe()} needs {layout.devices} devices; "
            f"cluster has {cluster.num_devices}"
        )
    cfg = PipelineConfig(
        scheme=scheme, num_devices=layout.p,
        num_microbatches=num_microbatches, num_waves=w,
        data_parallel=layout.d, microbatch_size=microbatch_size,
    )
    schedule = build_schedule(cfg)
    base = stage_costs(model, schedule.num_stages, cluster.device,
                       microbatch_size)
    layers_per_stage = (model.num_layers + 2) / schedule.num_stages
    costs = apply_tensor_parallel(base, cluster, model, layout.tp,
                                  microbatch_size, layers_per_stage)

    capacity = cluster.device.memory_bytes
    # Static pre-check: a TP-sharded stage set whose weights alone bust
    # the budget never enters the event loop.
    pruned = static_oom_result(cfg, cluster, model, schedule, costs,
                               capacity)
    if pruned is not None:
        return pruned

    # Pipeline peers sit `tp` ranks apart (rank = tp_rank + tp * pp_rank).
    class _Spaced(ConcreteCosts):
        def transfer_time(self, src: int, dst: int, stage: int) -> float:
            if src == dst:
                return 0.0
            return cluster.topology.transfer_time(
                src * layout.tp, dst * layout.tp, self.stage_costs.boundary_bytes
            )

    try:
        result = simulate(
            schedule, _Spaced(costs, _pipeline_comm(cluster, 0, layout.p)),
            resources=StageResources.from_stage_costs(costs),
            capacity_bytes=capacity,
        )
    except OutOfMemoryError as exc:
        return ThroughputResult(
            config=cfg, cluster_name=cluster.name, model_name=model.name,
            seq_per_s=None, bubble_ratio=None,
            peak_mem_bytes=float(exc.peak_bytes), iteration_s=None,
            oom_device=exc.device,
        )
    stats = bubble_stats(result.timeline)
    mem = result.memory
    grad_bytes = max(
        sum(costs.weight_bytes[stage]
            for stage, _r in schedule.placement.stages_on(dev))
        for dev in range(layout.p)
    ) / 16.0 * 4.0
    overhead = dp_allreduce_seconds(cluster, layout.p * layout.tp,
                                    layout.d, grad_bytes)
    iteration = result.makespan + overhead * (1.0 - dp_overlap)
    seqs = num_microbatches * microbatch_size * layout.d
    return ThroughputResult(
        config=cfg, cluster_name=cluster.name, model_name=model.name,
        seq_per_s=seqs / iteration, bubble_ratio=stats.bubble_ratio,
        peak_mem_bytes=mem.highest_peak, iteration_s=iteration,
    )


def hybrid_search(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    total_batch: int,
    waves: tuple[int, ...] = (1, 2, 4),
) -> list[tuple[HybridLayout, int, ThroughputResult]]:
    """Sweep (TP, PP, DP) factorizations of the cluster's device count."""
    n = cluster.num_devices
    out = []
    tp = 1
    while tp <= cluster.gpus_per_node:
        rest = n // tp
        p = rest
        while p >= 2:
            d = rest // p
            if tp * p * d == n:
                b = max(1, min(total_batch // d, p))
                mb = max(1, (total_batch // d) // b)
                wave_opts = (waves if scheme == "hanayo" else (1,))
                for w in wave_opts:
                    if 2 * w * p > model.num_layers + 2:
                        continue
                    try:
                        r = measure_hybrid_throughput(
                            scheme, cluster, model,
                            HybridLayout(tp, p, d), b, w=w,
                            microbatch_size=mb,
                        )
                    except ConfigError:
                        continue
                    out.append((HybridLayout(tp, p, d), w, r))
            p //= 2
        tp *= 2
    return out
