"""Hybrid tensor × pipeline × data parallelism (paper Secs. 1 and 6).

The paper positions pipeline parallelism inside the standard Megatron
recipe: tensor parallelism *within* a node (cheap collectives over
NVLink), pipeline parallelism *across* nodes (cheap P2P), data
parallelism on top.  This module adds the tensor-parallel dimension to
the throughput harness so that recipe can be searched and the paper's
placement claim checked quantitatively.

Since the collectives-in-the-IR refactor both communication dimensions
are *compiled into the program*: TP boundary all-reduces become
blocking ring collectives after every compute action
(:func:`repro.actions.with_tp_sync`, two per layer per pass) and DP
gradient syncs become asynchronous per-stage rings
(:func:`repro.actions.with_gradient_sync`), so the hybrid figures run
on simulated overlap exactly like the flat DP path.  The closed-form
model (:func:`apply_tensor_parallel` with ``include_comm=True``, plus
:func:`dp_allreduce_seconds`) is retained as the analytic cross-check
and the ``overlap="model"`` fallback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from ..actions.collectives import with_tp_sync
from ..actions.lowering import ExecutablePlan
from ..actions.program import Program
from .. import profiling
from ..cluster.comm_model import CommModel
from ..cluster.presets import Cluster
from ..cluster.topology import ring_transfer_chain
from ..config import PipelineConfig, RunConfig
from ..errors import ConfigError, OutOfMemoryError
from ..models.costs import StageCosts, stage_costs
from ..models.spec import ModelSpec
from ..runtime.batched import execute_many
from ..runtime.costs import ConcreteCosts
from ..runtime.simulator import sim_result_from_events, simulate_program
from ..schedules.base import Schedule
from ..schedules.factory import build_schedule
from .plans import PlanEntry, plan_cache
from .throughput import (
    OVERLAP_MODES,
    ThroughputResult,
    compile_cluster_program,
    static_oom_result,
    throughput_from_simulation,
)


def tp_allreduce_seconds(cluster: Cluster, tp: int,
                         nbytes: float) -> float:
    """One tensor-parallel all-reduce over the first TP group's ranks."""
    if tp <= 1:
        return 0.0
    if tp > cluster.num_devices:
        raise ConfigError(
            f"TP group of {tp} ranks exceeds cluster {cluster.name} "
            f"of {cluster.num_devices} devices"
        )
    ranks = list(range(tp))
    return ring_transfer_chain(cluster.topology, ranks, nbytes)


def apply_tensor_parallel(
    costs: StageCosts,
    cluster: Cluster,
    model: ModelSpec,
    tp: int,
    microbatch_size: int,
    layers_per_stage: float,
    include_comm: bool = True,
) -> StageCosts:
    """Shard stage costs over a TP group.

    ``include_comm=True`` (the closed-form model) folds the boundary
    all-reduce seconds into every stage duration; the simulated path
    passes ``False`` and lets the compiled :class:`CollectiveOp`\\ s
    carry exactly those seconds instead — the parity the hybrid tests
    pin down.
    """
    if tp < 1:
        raise ConfigError("tensor-parallel degree must be >= 1")
    if tp == 1:
        return costs
    if tp > cluster.gpus_per_node:
        raise ConfigError(
            f"TP degree {tp} exceeds the node size "
            f"{cluster.gpus_per_node} (TP wants NVLink locality)"
        )
    per_stage_comm = 0.0
    if include_comm:
        ar = tp_allreduce_seconds(cluster, tp,
                                  model.boundary_bytes(microbatch_size))
        # 2 all-reduces per layer per pass; backward mirrors them.
        per_stage_comm = 2.0 * layers_per_stage * ar
    return StageCosts(
        forward=tuple(f / tp + per_stage_comm for f in costs.forward),
        backward=tuple(b / tp + per_stage_comm for b in costs.backward),
        boundary_bytes=costs.boundary_bytes,
        weight_bytes=tuple(w / tp for w in costs.weight_bytes),
        activation_bytes=tuple(a / tp for a in costs.activation_bytes),
    )


class _SpacedCosts(ConcreteCosts):
    """Cost oracle of a hybrid pipeline.

    Pipeline peers sit ``tp`` ranks apart in the cluster topology
    (rank = tp_rank + tp * pp_rank), so both pipeline transfers and the
    program-local → global rank mapping space by the TP degree — which
    is what routes DP/TP collective rings and link contention onto the
    *physical* ranks.
    """

    def __init__(self, stage_costs: StageCosts, cluster: Cluster,
                 tp: int) -> None:
        super().__init__(stage_costs,
                         CommModel(topology=cluster.topology))
        self._tp = tp

    def global_rank(self, device: int) -> int:
        return device * self._tp

    def transfer_time(self, src: int, dst: int, stage: int) -> float:
        if src == dst:
            return 0.0
        return self.comm.topology.transfer_time(
            self.global_rank(src), self.global_rank(dst),
            self.stage_costs.boundary_bytes,
        )

    def link_latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return self.comm.topology.effective_link(
            self.global_rank(src), self.global_rank(dst)
        ).latency


@dataclass(frozen=True)
class HybridLayout:
    """A full 3D layout: tensor x pipeline x data parallel."""

    tp: int
    p: int
    d: int

    @property
    def devices(self) -> int:
        return self.tp * self.p * self.d

    def describe(self) -> str:
        return f"TP={self.tp} x PP={self.p} x DP={self.d}"


def tp_rank_groups(cluster: Cluster, layout: HybridLayout
                   ) -> dict[int, tuple[int, ...]]:
    """Global-rank TP group for every in-pipeline device.

    Pipeline device ``g`` owns cluster ranks ``[g*tp, (g+1)*tp)`` —
    contiguous in-node ranks, the Megatron placement.  Raises
    :class:`~repro.errors.ConfigError` when the layout references
    ranks the topology does not have.
    """
    groups: dict[int, tuple[int, ...]] = {}
    for g in range(layout.p):
        ranks = tuple(g * layout.tp + j for j in range(layout.tp))
        if ranks and ranks[-1] >= cluster.num_devices:
            raise ConfigError(
                f"TP group {list(ranks)} of pipeline device {g} "
                f"references rank {ranks[-1]}, but cluster "
                f"{cluster.name} has {cluster.num_devices} devices "
                f"({layout.describe()})"
            )
        groups[g] = ranks
    return groups


@dataclass
class HybridCell:
    """One compiled hybrid configuration, ready to simulate.

    ``plan`` is the lowered + cost-bound execution plan of ``program``
    (shared through the analysis plan cache across cost-only axes);
    pass both to :func:`~repro.runtime.simulate_program`.
    """

    cfg: PipelineConfig
    schedule: Schedule
    costs: StageCosts
    program: Program
    oracle: ConcreteCosts
    plan: ExecutablePlan


def build_hybrid_simulation(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    layout: HybridLayout,
    num_microbatches: int,
    w: int = 1,
    microbatch_size: int = 1,
    run: RunConfig | None = None,
    simulated: bool = True,
) -> HybridCell:
    """Compile one hybrid cell into a :class:`HybridCell`.

    The single build path ``measure_hybrid_throughput`` and ``repro
    trace --dp/--tp`` share.  ``simulated=True`` compiles TP boundary
    and DP gradient collectives into the program (comm excluded from
    stage durations); ``simulated=False`` folds TP comm into durations
    and leaves the program collective-free (the closed-form model).
    ``HybridLayout(1, p, d)`` degrades gracefully to the flat DP case.

    Schedule, program and lowered plan are shared through the analysis
    plan cache: a cell differing only in the cluster re-times the
    cached plan instead of recompiling (see :mod:`repro.analysis.plans`).
    """
    if layout.devices > cluster.num_devices:
        raise ConfigError(
            f"{layout.describe()} needs {layout.devices} devices; "
            f"cluster has {cluster.num_devices}"
        )
    run = run or RunConfig()
    cfg = PipelineConfig(
        scheme=scheme, num_devices=layout.p,
        num_microbatches=num_microbatches, num_waves=w,
        data_parallel=layout.d, microbatch_size=microbatch_size,
    )
    plans = plan_cache()
    key = ("hybrid", scheme, layout.tp, layout.p, layout.d,
           num_microbatches, microbatch_size, w, simulated,
           run.prefetch, run.batch_cross_comm, model)
    entry = plans.get(key)
    with profiling.phase("build"):
        schedule = entry.schedule if entry is not None else \
            build_schedule(cfg)
        base = stage_costs(model, schedule.num_stages, cluster.device,
                           microbatch_size)
        layers_per_stage = (model.num_layers + 2) / schedule.num_stages
        costs = apply_tensor_parallel(base, cluster, model, layout.tp,
                                      microbatch_size, layers_per_stage,
                                      include_comm=not simulated)
    oracle = _SpacedCosts(costs, cluster, layout.tp)
    with profiling.phase("lower"):
        if entry is None:
            program = compile_cluster_program(
                schedule, cluster, costs,
                d=layout.d if simulated else 1, run=run, spacing=layout.tp,
            )
            if simulated and layout.tp > 1:
                program = with_tp_sync(
                    program, tp_rank_groups(cluster, layout),
                    nbytes=model.boundary_bytes(microbatch_size),
                    count_per_pass=2.0 * layers_per_stage,
                )
            entry = plans.put(key, PlanEntry(
                schedule, program, ExecutablePlan.lower(program)))
        plan = entry.bound_plan((cluster, costs, layout.p, layout.tp),
                                lambda: oracle)
    return HybridCell(cfg=cfg, schedule=schedule, costs=costs,
                      program=entry.program, oracle=oracle, plan=plan)


def measure_hybrid_throughput(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    layout: HybridLayout,
    num_microbatches: int,
    w: int = 1,
    microbatch_size: int = 1,
    run: RunConfig | None = None,
    overlap: str = "simulated",
    enforce_memory: bool = True,
    capacity_bytes: int | None = None,
) -> ThroughputResult:
    """Throughput of one (TP, PP, DP) layout on a cluster.

    TP groups occupy contiguous in-node ranks; the pipeline's P2P hops
    then connect *node-distance* peers, which is modeled by spacing
    pipeline ranks ``tp`` apart in the cluster topology.  Under the
    default ``overlap="simulated"`` both the TP boundary all-reduces
    and the DP gradient rings are compiled into the program and timed
    by the event core; ``overlap="model"`` keeps the closed-form
    folding + :data:`ANALYTIC_DP_OVERLAP` discount.
    """
    if overlap not in OVERLAP_MODES:
        raise ConfigError(
            f"unknown overlap mode {overlap!r}; expected one of "
            f"{OVERLAP_MODES}"
        )
    run = run or RunConfig()
    simulated = overlap == "simulated"
    cell = build_hybrid_simulation(
        scheme, cluster, model, layout, num_microbatches,
        w=w, microbatch_size=microbatch_size, run=run,
        simulated=simulated,
    )

    capacity = (cluster.device.memory_bytes if capacity_bytes is None
                else capacity_bytes)
    if enforce_memory:
        # Static pre-check: a TP-sharded stage set whose weights alone
        # bust the budget never enters the event loop.
        pruned = static_oom_result(cell.cfg, cluster, model,
                                   cell.schedule, cell.costs, capacity)
        if pruned is not None:
            return pruned

    t0 = time.perf_counter()
    try:
        result = simulate_program(
            cell.program, cell.oracle, run, schedule=cell.schedule,
            plan=cell.plan,
            capacity_bytes=capacity if enforce_memory else None,
        )
    except OutOfMemoryError as exc:
        if layout.tp > 1:
            profiling.record_scalar(1, time.perf_counter() - t0, "tp>1")
        return ThroughputResult(
            config=cell.cfg, cluster_name=cluster.name,
            model_name=model.name, seq_per_s=None, bubble_ratio=None,
            peak_mem_bytes=float(exc.peak_bytes), iteration_s=None,
            oom_device=exc.device,
        )
    if layout.tp > 1:
        # the remaining scalar TP>1 frontier (single-cell calls; the
        # sweep engine routes multi-lane units through
        # measure_hybrid_throughput_batch)
        profiling.record_scalar(1, time.perf_counter() - t0, "tp>1")
    return throughput_from_simulation(
        cell.cfg, cluster, model, cell.schedule, cell.costs, result,
        ring_p=layout.p * layout.tp, overlap=overlap,
    )


@dataclass(frozen=True)
class HybridRequest:
    """One cell of a batched hybrid measurement (TP x PP x DP).

    Field-for-field the keyword surface of
    :func:`measure_hybrid_throughput`; a list of these is what
    :func:`measure_hybrid_throughput_batch` groups by structural plan
    key and executes in lockstep.
    """

    scheme: str
    cluster: Cluster
    model: ModelSpec
    layout: HybridLayout
    num_microbatches: int
    w: int = 1
    microbatch_size: int = 1
    enforce_memory: bool = True
    overlap: str = "simulated"
    capacity_bytes: int | None = None
    #: arbitrate shared wires for this cell even when the batch-wide
    #: RunConfig leaves contention off (ORed with ``run.contention``)
    contention: bool = False


def measure_hybrid_throughput_batch(
    requests: list[HybridRequest],
    run: RunConfig | None = None,
) -> list[ThroughputResult | ConfigError]:
    """Measure many hybrid cells at once, batching structural lanes.

    The TP>1 counterpart of
    :func:`repro.analysis.throughput.measure_throughput_batch`: the TP
    boundary all-reduces and DP gradient rings are already compiled
    into each group's program, so cost-only lanes (clusters, capacity
    variants) of one (scheme, TP, PP, DP, B, mb, w) shape re-time the
    cached plan and stack into the lockstep batch — no per-lane scalar
    replay.  All groups' lanes go through one global
    :func:`repro.runtime.batched.execute_many`, which further merges
    congruent structures across plan keys.  Outcomes come back in
    request order; a cell :func:`measure_hybrid_throughput` would
    reject yields its :class:`~repro.errors.ConfigError` as the
    outcome, and every produced :class:`ThroughputResult` is exactly
    what the scalar call returns (pinned by the sweep parity tests).
    """
    run = run or RunConfig()
    outcomes: list[ThroughputResult | ConfigError | None] = \
        [None] * len(requests)
    groups: dict[tuple, list[int]] = {}
    for i, req in enumerate(requests):
        if req.overlap not in OVERLAP_MODES:
            outcomes[i] = ConfigError(
                f"unknown overlap mode {req.overlap!r}; expected one of "
                f"{OVERLAP_MODES}"
            )
            continue
        if req.layout.devices > req.cluster.num_devices:
            outcomes[i] = ConfigError(
                f"{req.layout.describe()} needs {req.layout.devices} "
                f"devices; cluster has {req.cluster.num_devices}"
            )
            continue
        simulated = req.overlap == "simulated"
        key = ("hybrid", req.scheme, req.layout.tp, req.layout.p,
               req.layout.d, req.num_microbatches, req.microbatch_size,
               req.w, simulated, run.prefetch, run.batch_cross_comm,
               req.model)
        groups.setdefault(key, []).append(i)

    plans = plan_cache()
    #: items partitioned by each lane's effective contention mode,
    #: mirroring measure_throughput_batch
    items_by: dict[bool, list[tuple]] = {False: [], True: []}
    #: per-group fold context mirroring measure_throughput_batch
    pending: list[tuple] = []
    for key, lane_ids in groups.items():
        head = requests[lane_ids[0]]
        layout = head.layout
        simulated = head.overlap == "simulated"
        group_cfg = PipelineConfig(
            scheme=head.scheme, num_devices=layout.p,
            num_microbatches=head.num_microbatches, num_waves=head.w,
            data_parallel=layout.d,
            microbatch_size=head.microbatch_size,
        )
        label = (f"{head.scheme}/{head.model.name} TP{layout.tp} "
                 f"P{layout.p} D{layout.d} W{head.w} "
                 f"B{head.num_microbatches}x{head.microbatch_size} "
                 f"[{len(lane_ids)} lanes]")
        with profiling.cell(label):
            entry = plans.get(key)
            with profiling.phase("build"):
                try:
                    schedule = entry.schedule if entry is not None else \
                        build_schedule(group_cfg)
                except ConfigError as exc:
                    for i in lane_ids:
                        outcomes[i] = exc
                    continue
                # model is part of the group key, so layers-per-stage
                # and boundary bytes agree across the group's lanes
                layers_per_stage = (head.model.num_layers + 2) \
                    / schedule.num_stages
                lane_costs: list = []
                for i in lane_ids:
                    req = requests[i]
                    base = stage_costs(req.model, schedule.num_stages,
                                       req.cluster.device,
                                       req.microbatch_size)
                    try:
                        lane_costs.append(apply_tensor_parallel(
                            base, req.cluster, req.model, layout.tp,
                            req.microbatch_size, layers_per_stage,
                            include_comm=not simulated))
                    except ConfigError as exc:
                        # per-lane: TP degree vs *this* cluster's node
                        lane_costs.append(exc)
            live: list[int] = []     # positions into lane_ids
            for pos, i in enumerate(lane_ids):
                req = requests[i]
                costs = lane_costs[pos]
                if isinstance(costs, ConfigError):
                    outcomes[i] = costs
                    continue
                if not req.enforce_memory:
                    live.append(pos)
                    continue
                capacity = (req.cluster.device.memory_bytes
                            if req.capacity_bytes is None
                            else req.capacity_bytes)
                pruned = static_oom_result(group_cfg, req.cluster,
                                           req.model, schedule, costs,
                                           capacity)
                if pruned is not None:
                    outcomes[i] = pruned
                else:
                    live.append(pos)
            if not live:
                continue
            with profiling.phase("lower"):
                if entry is None:
                    pos = live[0]
                    req = requests[lane_ids[pos]]
                    program = compile_cluster_program(
                        schedule, req.cluster, lane_costs[pos],
                        d=layout.d if simulated else 1, run=run,
                        spacing=layout.tp,
                    )
                    if simulated and layout.tp > 1:
                        program = with_tp_sync(
                            program, tp_rank_groups(req.cluster, layout),
                            nbytes=req.model.boundary_bytes(
                                req.microbatch_size),
                            count_per_pass=2.0 * layers_per_stage,
                        )
                    entry = plans.put(key, PlanEntry(
                        schedule, program, ExecutablePlan.lower(program)))
                slots: list[tuple[bool, int]] = []
                for pos in live:
                    req = requests[lane_ids[pos]]
                    costs = lane_costs[pos]
                    plan = entry.bound_plan(
                        (req.cluster, costs, layout.p, layout.tp),
                        lambda req=req, costs=costs: _SpacedCosts(
                            costs, req.cluster, layout.tp))
                    capacity = None
                    if req.enforce_memory:
                        capacity = (req.cluster.device.memory_bytes
                                    if req.capacity_bytes is None
                                    else req.capacity_bytes)
                    mode = run.contention or req.contention
                    slots.append((mode, len(items_by[mode])))
                    items_by[mode].append((plan, capacity))
            pending.append((entry, schedule, group_cfg, lane_ids, live,
                            lane_costs, slots))

    batches: dict[bool, object] = {}
    n_lanes = len(items_by[False]) + len(items_by[True])
    if n_lanes:
        with profiling.cell(f"simulate [{n_lanes} lanes]"):
            with profiling.phase("simulate"):
                for mode, items in items_by.items():
                    if items:
                        mode_run = run if mode == run.contention else \
                            replace(run, contention=mode)
                        batches[mode] = execute_many(items, mode_run,
                                                     detail="lean")
    for entry, schedule, group_cfg, lane_ids, live, lane_costs, slots \
            in pending:
        head = requests[lane_ids[0]]
        for out_pos, pos in enumerate(live):
            i = lane_ids[pos]
            req = requests[i]
            mode, idx = slots[out_pos]
            batch = batches[mode]
            err = batch.errors[idx]
            if err is not None:
                outcomes[i] = ThroughputResult(
                    config=group_cfg, cluster_name=req.cluster.name,
                    model_name=req.model.name, seq_per_s=None,
                    bubble_ratio=None,
                    peak_mem_bytes=float(err.peak_bytes),
                    iteration_s=None, oom_device=err.device,
                )
                continue
            sim = sim_result_from_events(entry.program,
                                         batch.results[idx],
                                         schedule=schedule)
            outcomes[i] = throughput_from_simulation(
                group_cfg, req.cluster, req.model, schedule,
                lane_costs[pos], sim,
                ring_p=req.layout.p * req.layout.tp,
                overlap=req.overlap)
    return outcomes


def hybrid_search(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    total_batch: int,
    waves: tuple[int, ...] = (1, 2, 4),
    overlap: str = "simulated",
) -> list[tuple[HybridLayout, int, ThroughputResult]]:
    """Sweep (TP, PP, DP) factorizations of the cluster's device count."""
    n = cluster.num_devices
    out = []
    tp = 1
    while tp <= cluster.gpus_per_node:
        rest = n // tp
        p = rest
        while p >= 2:
            d = rest // p
            if tp * p * d == n:
                b = max(1, min(total_batch // d, p))
                mb = max(1, (total_batch // d) // b)
                wave_opts = (waves if scheme == "hanayo" else (1,))
                for w in wave_opts:
                    if 2 * w * p > model.num_layers + 2:
                        continue
                    try:
                        r = measure_hybrid_throughput(
                            scheme, cluster, model,
                            HybridLayout(tp, p, d), b, w=w,
                            microbatch_size=mb, overlap=overlap,
                        )
                    except ConfigError:
                        continue
                    out.append((HybridLayout(tp, p, d), w, r))
            p //= 2
        tp *= 2
    return out
