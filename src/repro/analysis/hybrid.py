"""Hybrid tensor × pipeline × data parallelism (paper Secs. 1 and 6).

The paper positions pipeline parallelism inside the standard Megatron
recipe: tensor parallelism *within* a node (cheap collectives over
NVLink), pipeline parallelism *across* nodes (cheap P2P), data
parallelism on top.  This module adds the tensor-parallel dimension to
the throughput harness so that recipe can be searched and the paper's
placement claim checked quantitatively.

Since the collectives-in-the-IR refactor both communication dimensions
are *compiled into the program*: TP boundary all-reduces become
blocking ring collectives after every compute action
(:func:`repro.actions.with_tp_sync`, two per layer per pass) and DP
gradient syncs become asynchronous per-stage rings
(:func:`repro.actions.with_gradient_sync`), so the hybrid figures run
on simulated overlap exactly like the flat DP path.  The closed-form
model (:func:`apply_tensor_parallel` with ``include_comm=True``, plus
:func:`dp_allreduce_seconds`) is retained as the analytic cross-check
and the ``overlap="model"`` fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..actions.collectives import with_tp_sync
from ..actions.lowering import ExecutablePlan
from ..actions.program import Program
from .. import profiling
from ..cluster.comm_model import CommModel
from ..cluster.presets import Cluster
from ..cluster.topology import ring_transfer_chain
from ..config import PipelineConfig, RunConfig
from ..errors import ConfigError, OutOfMemoryError
from ..models.costs import StageCosts, stage_costs
from ..models.spec import ModelSpec
from ..runtime.costs import ConcreteCosts
from ..runtime.simulator import simulate_program
from ..schedules.base import Schedule
from ..schedules.factory import build_schedule
from .plans import PlanEntry, plan_cache
from .throughput import (
    OVERLAP_MODES,
    ThroughputResult,
    compile_cluster_program,
    static_oom_result,
    throughput_from_simulation,
)


def tp_allreduce_seconds(cluster: Cluster, tp: int,
                         nbytes: float) -> float:
    """One tensor-parallel all-reduce over the first TP group's ranks."""
    if tp <= 1:
        return 0.0
    if tp > cluster.num_devices:
        raise ConfigError(
            f"TP group of {tp} ranks exceeds cluster {cluster.name} "
            f"of {cluster.num_devices} devices"
        )
    ranks = list(range(tp))
    return ring_transfer_chain(cluster.topology, ranks, nbytes)


def apply_tensor_parallel(
    costs: StageCosts,
    cluster: Cluster,
    model: ModelSpec,
    tp: int,
    microbatch_size: int,
    layers_per_stage: float,
    include_comm: bool = True,
) -> StageCosts:
    """Shard stage costs over a TP group.

    ``include_comm=True`` (the closed-form model) folds the boundary
    all-reduce seconds into every stage duration; the simulated path
    passes ``False`` and lets the compiled :class:`CollectiveOp`\\ s
    carry exactly those seconds instead — the parity the hybrid tests
    pin down.
    """
    if tp < 1:
        raise ConfigError("tensor-parallel degree must be >= 1")
    if tp == 1:
        return costs
    if tp > cluster.gpus_per_node:
        raise ConfigError(
            f"TP degree {tp} exceeds the node size "
            f"{cluster.gpus_per_node} (TP wants NVLink locality)"
        )
    per_stage_comm = 0.0
    if include_comm:
        ar = tp_allreduce_seconds(cluster, tp,
                                  model.boundary_bytes(microbatch_size))
        # 2 all-reduces per layer per pass; backward mirrors them.
        per_stage_comm = 2.0 * layers_per_stage * ar
    return StageCosts(
        forward=tuple(f / tp + per_stage_comm for f in costs.forward),
        backward=tuple(b / tp + per_stage_comm for b in costs.backward),
        boundary_bytes=costs.boundary_bytes,
        weight_bytes=tuple(w / tp for w in costs.weight_bytes),
        activation_bytes=tuple(a / tp for a in costs.activation_bytes),
    )


class _SpacedCosts(ConcreteCosts):
    """Cost oracle of a hybrid pipeline.

    Pipeline peers sit ``tp`` ranks apart in the cluster topology
    (rank = tp_rank + tp * pp_rank), so both pipeline transfers and the
    program-local → global rank mapping space by the TP degree — which
    is what routes DP/TP collective rings and link contention onto the
    *physical* ranks.
    """

    def __init__(self, stage_costs: StageCosts, cluster: Cluster,
                 tp: int) -> None:
        super().__init__(stage_costs,
                         CommModel(topology=cluster.topology))
        self._tp = tp

    def global_rank(self, device: int) -> int:
        return device * self._tp

    def transfer_time(self, src: int, dst: int, stage: int) -> float:
        if src == dst:
            return 0.0
        return self.comm.topology.transfer_time(
            self.global_rank(src), self.global_rank(dst),
            self.stage_costs.boundary_bytes,
        )

    def link_latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        return self.comm.topology.effective_link(
            self.global_rank(src), self.global_rank(dst)
        ).latency


@dataclass(frozen=True)
class HybridLayout:
    """A full 3D layout: tensor x pipeline x data parallel."""

    tp: int
    p: int
    d: int

    @property
    def devices(self) -> int:
        return self.tp * self.p * self.d

    def describe(self) -> str:
        return f"TP={self.tp} x PP={self.p} x DP={self.d}"


def tp_rank_groups(cluster: Cluster, layout: HybridLayout
                   ) -> dict[int, tuple[int, ...]]:
    """Global-rank TP group for every in-pipeline device.

    Pipeline device ``g`` owns cluster ranks ``[g*tp, (g+1)*tp)`` —
    contiguous in-node ranks, the Megatron placement.  Raises
    :class:`~repro.errors.ConfigError` when the layout references
    ranks the topology does not have.
    """
    groups: dict[int, tuple[int, ...]] = {}
    for g in range(layout.p):
        ranks = tuple(g * layout.tp + j for j in range(layout.tp))
        if ranks and ranks[-1] >= cluster.num_devices:
            raise ConfigError(
                f"TP group {list(ranks)} of pipeline device {g} "
                f"references rank {ranks[-1]}, but cluster "
                f"{cluster.name} has {cluster.num_devices} devices "
                f"({layout.describe()})"
            )
        groups[g] = ranks
    return groups


@dataclass
class HybridCell:
    """One compiled hybrid configuration, ready to simulate.

    ``plan`` is the lowered + cost-bound execution plan of ``program``
    (shared through the analysis plan cache across cost-only axes);
    pass both to :func:`~repro.runtime.simulate_program`.
    """

    cfg: PipelineConfig
    schedule: Schedule
    costs: StageCosts
    program: Program
    oracle: ConcreteCosts
    plan: ExecutablePlan


def build_hybrid_simulation(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    layout: HybridLayout,
    num_microbatches: int,
    w: int = 1,
    microbatch_size: int = 1,
    run: RunConfig | None = None,
    simulated: bool = True,
) -> HybridCell:
    """Compile one hybrid cell into a :class:`HybridCell`.

    The single build path ``measure_hybrid_throughput`` and ``repro
    trace --dp/--tp`` share.  ``simulated=True`` compiles TP boundary
    and DP gradient collectives into the program (comm excluded from
    stage durations); ``simulated=False`` folds TP comm into durations
    and leaves the program collective-free (the closed-form model).
    ``HybridLayout(1, p, d)`` degrades gracefully to the flat DP case.

    Schedule, program and lowered plan are shared through the analysis
    plan cache: a cell differing only in the cluster re-times the
    cached plan instead of recompiling (see :mod:`repro.analysis.plans`).
    """
    if layout.devices > cluster.num_devices:
        raise ConfigError(
            f"{layout.describe()} needs {layout.devices} devices; "
            f"cluster has {cluster.num_devices}"
        )
    run = run or RunConfig()
    cfg = PipelineConfig(
        scheme=scheme, num_devices=layout.p,
        num_microbatches=num_microbatches, num_waves=w,
        data_parallel=layout.d, microbatch_size=microbatch_size,
    )
    plans = plan_cache()
    key = ("hybrid", scheme, layout.tp, layout.p, layout.d,
           num_microbatches, microbatch_size, w, simulated,
           run.prefetch, run.batch_cross_comm, model)
    entry = plans.get(key)
    with profiling.phase("build"):
        schedule = entry.schedule if entry is not None else \
            build_schedule(cfg)
        base = stage_costs(model, schedule.num_stages, cluster.device,
                           microbatch_size)
        layers_per_stage = (model.num_layers + 2) / schedule.num_stages
        costs = apply_tensor_parallel(base, cluster, model, layout.tp,
                                      microbatch_size, layers_per_stage,
                                      include_comm=not simulated)
    oracle = _SpacedCosts(costs, cluster, layout.tp)
    with profiling.phase("lower"):
        if entry is None:
            program = compile_cluster_program(
                schedule, cluster, costs,
                d=layout.d if simulated else 1, run=run, spacing=layout.tp,
            )
            if simulated and layout.tp > 1:
                program = with_tp_sync(
                    program, tp_rank_groups(cluster, layout),
                    nbytes=model.boundary_bytes(microbatch_size),
                    count_per_pass=2.0 * layers_per_stage,
                )
            entry = plans.put(key, PlanEntry(
                schedule, program, ExecutablePlan.lower(program)))
        plan = entry.plan.retime(oracle)
    return HybridCell(cfg=cfg, schedule=schedule, costs=costs,
                      program=entry.program, oracle=oracle, plan=plan)


def measure_hybrid_throughput(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    layout: HybridLayout,
    num_microbatches: int,
    w: int = 1,
    microbatch_size: int = 1,
    run: RunConfig | None = None,
    overlap: str = "simulated",
    enforce_memory: bool = True,
    capacity_bytes: int | None = None,
) -> ThroughputResult:
    """Throughput of one (TP, PP, DP) layout on a cluster.

    TP groups occupy contiguous in-node ranks; the pipeline's P2P hops
    then connect *node-distance* peers, which is modeled by spacing
    pipeline ranks ``tp`` apart in the cluster topology.  Under the
    default ``overlap="simulated"`` both the TP boundary all-reduces
    and the DP gradient rings are compiled into the program and timed
    by the event core; ``overlap="model"`` keeps the closed-form
    folding + :data:`ANALYTIC_DP_OVERLAP` discount.
    """
    if overlap not in OVERLAP_MODES:
        raise ConfigError(
            f"unknown overlap mode {overlap!r}; expected one of "
            f"{OVERLAP_MODES}"
        )
    run = run or RunConfig()
    simulated = overlap == "simulated"
    cell = build_hybrid_simulation(
        scheme, cluster, model, layout, num_microbatches,
        w=w, microbatch_size=microbatch_size, run=run,
        simulated=simulated,
    )

    capacity = (cluster.device.memory_bytes if capacity_bytes is None
                else capacity_bytes)
    if enforce_memory:
        # Static pre-check: a TP-sharded stage set whose weights alone
        # bust the budget never enters the event loop.
        pruned = static_oom_result(cell.cfg, cluster, model,
                                   cell.schedule, cell.costs, capacity)
        if pruned is not None:
            return pruned

    try:
        result = simulate_program(
            cell.program, cell.oracle, run, schedule=cell.schedule,
            plan=cell.plan,
            capacity_bytes=capacity if enforce_memory else None,
        )
    except OutOfMemoryError as exc:
        return ThroughputResult(
            config=cell.cfg, cluster_name=cluster.name,
            model_name=model.name, seq_per_s=None, bubble_ratio=None,
            peak_mem_bytes=float(exc.peak_bytes), iteration_s=None,
            oom_device=exc.device,
        )
    return throughput_from_simulation(
        cell.cfg, cluster, model, cell.schedule, cell.costs, result,
        ring_p=layout.p * layout.tp, overlap=overlap,
    )


def hybrid_search(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    total_batch: int,
    waves: tuple[int, ...] = (1, 2, 4),
    overlap: str = "simulated",
) -> list[tuple[HybridLayout, int, ThroughputResult]]:
    """Sweep (TP, PP, DP) factorizations of the cluster's device count."""
    n = cluster.num_devices
    out = []
    tp = 1
    while tp <= cluster.gpus_per_node:
        rest = n // tp
        p = rest
        while p >= 2:
            d = rest // p
            if tp * p * d == n:
                b = max(1, min(total_batch // d, p))
                mb = max(1, (total_batch // d) // b)
                wave_opts = (waves if scheme == "hanayo" else (1,))
                for w in wave_opts:
                    if 2 * w * p > model.num_layers + 2:
                        continue
                    try:
                        r = measure_hybrid_throughput(
                            scheme, cluster, model,
                            HybridLayout(tp, p, d), b, w=w,
                            microbatch_size=mb, overlap=overlap,
                        )
                    except ConfigError:
                        continue
                    out.append((HybridLayout(tp, p, d), w, r))
            p //= 2
        tp *= 2
    return out
