"""The unified performance model of pipeline parallelism (paper Fig. 2).

Fig. 2 compares the state-of-the-art schemes along two axes — bubble
ratio and memory consumption — in the shared symbol vocabulary of
Table 1.  :func:`scheme_profile` returns that row for any scheme, and
:func:`compare_schemes` reproduces the whole table, including Chimera's
cross-communication constant ``K = P²/2 − P``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .bubbles import theoretical_bubble_ratio
from .memory_model import activation_units, weight_units


@dataclass(frozen=True)
class SchemeProfile:
    """One row of the Fig. 2 comparison."""

    scheme: str
    bubble_ratio: float
    weight_memory_units: float      # Mw per device, model/P chunks = 1 unit
    activation_memory_units: float  # Ma on the worst device, device-loads
    cross_comm_messages: int        # exposed cross-communications / iter

    def describe(self) -> str:
        return (f"{self.scheme:12s} bubble={self.bubble_ratio * 100:5.1f}%  "
                f"Mw={self.weight_memory_units:.1f}  "
                f"Ma={self.activation_memory_units:.2f}  "
                f"xcomm={self.cross_comm_messages}")


def chimera_k(p: int) -> float:
    """The paper's ``K = P²/2 − P`` cross-communication count."""
    if p < 2:
        raise ConfigError("K needs P >= 2")
    return p * p / 2.0 - p


def cross_comm_messages(scheme: str, p: int, b: int, w: int = 1) -> int:
    """P2P messages per micro-batch-iteration that cross devices.

    Forward + backward each cross every device boundary once per
    micro-batch; wave and interleaved placements multiply boundaries.
    Wave turns are free (same device), which is the snake placement's
    whole point.
    """
    if scheme in ("gpipe", "dapple", "async-1f1b"):
        boundaries = p - 1
    elif scheme == "gems":
        boundaries = p - 1  # per direction; directions alternate
    elif scheme == "chimera":
        boundaries = p - 1  # per replica chain
    elif scheme == "chimera-wave":
        boundaries = 2 * (p - 1)  # S=2P stages, 2 turns free
    elif scheme == "hanayo":
        # S = 2WP stages, 2W turns are local → 2WP − 1 − 2W + 1 hops
        boundaries = 2 * w * (p - 1)
    elif scheme == "interleaved":
        # every chunk boundary crosses devices, including wrap-arounds
        boundaries = w * p - 1
    else:
        raise ConfigError(f"unknown scheme {scheme!r}")
    return 2 * b * boundaries


def scheme_profile(scheme: str, p: int, b: int | None = None,
                   w: int = 1, t_f: float = 1.0, t_b: float = 2.0,
                   t_c: float = 0.0) -> SchemeProfile:
    b = p if b is None else b
    return SchemeProfile(
        scheme=scheme,
        bubble_ratio=theoretical_bubble_ratio(scheme, p, b, w, t_f, t_b, t_c),
        weight_memory_units=weight_units(scheme),
        activation_memory_units=activation_units(scheme, p, b, w),
        cross_comm_messages=cross_comm_messages(scheme, p, b, w),
    )


def compare_schemes(p: int, b: int | None = None,
                    waves: tuple[int, ...] = (2, 4),
                    t_f: float = 1.0, t_b: float = 2.0,
                    t_c: float = 0.0) -> list[SchemeProfile]:
    """The full Fig. 2 table for one (P, B) point."""
    rows = [
        scheme_profile("gpipe", p, b, 1, t_f, t_b, t_c),
        scheme_profile("dapple", p, b, 1, t_f, t_b, t_c),
        scheme_profile("gems", p, b, 1, t_f, t_b, t_c),
        scheme_profile("chimera", p, b, 1, t_f, t_b, t_c),
    ]
    for w in waves:
        rows.append(scheme_profile("hanayo", p, b, w, t_f, t_b, t_c))
    return rows
