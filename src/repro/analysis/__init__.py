"""Analytic models, search, scaling, and reporting."""

from .bubbles import (
    chimera_bubble_ratio,
    dapple_bubble_ratio,
    gems_bubble_ratio,
    gpipe_bubble_ratio,
    hanayo_bubble_ratio,
    hanayo_bubble_ratio_simplified,
    interleaved_bubble_ratio,
    theoretical_bubble_ratio,
)
from .memory_model import activation_balance_note, activation_units, weight_units
from .perf_model import (
    SchemeProfile,
    chimera_k,
    compare_schemes,
    cross_comm_messages,
    scheme_profile,
)
from .report import format_table, percent, ratio_vs
from .scaling import (
    ScalingPoint,
    layouts_for,
    parallel_efficiency,
    speedup,
    strong_scaling,
    weak_scaling,
)
from .search import (
    DEFAULT_WAVES,
    SearchCell,
    best_config,
    best_throughput,
    feasible_waves,
    search_grid,
)
from .hybrid import (
    HybridLayout,
    apply_tensor_parallel,
    hybrid_search,
    measure_hybrid_throughput,
    tp_allreduce_seconds,
)
from .throughput import (
    ThroughputResult,
    dp_allreduce_seconds,
    measure_throughput,
)
from .zones import (
    ZoneBreakdown,
    classify_idle,
    zone_a_size,
    zone_b_size,
    zone_c_sizes,
)

__all__ = [
    "DEFAULT_WAVES",
    "HybridLayout",
    "ScalingPoint",
    "SchemeProfile",
    "SearchCell",
    "ThroughputResult",
    "ZoneBreakdown",
    "activation_balance_note",
    "apply_tensor_parallel",
    "activation_units",
    "best_config",
    "best_throughput",
    "chimera_bubble_ratio",
    "chimera_k",
    "classify_idle",
    "compare_schemes",
    "cross_comm_messages",
    "dapple_bubble_ratio",
    "dp_allreduce_seconds",
    "feasible_waves",
    "format_table",
    "gems_bubble_ratio",
    "gpipe_bubble_ratio",
    "hybrid_search",
    "hanayo_bubble_ratio",
    "hanayo_bubble_ratio_simplified",
    "interleaved_bubble_ratio",
    "layouts_for",
    "measure_throughput",
    "measure_hybrid_throughput",
    "parallel_efficiency",
    "percent",
    "ratio_vs",
    "scheme_profile",
    "search_grid",
    "speedup",
    "strong_scaling",
    "theoretical_bubble_ratio",
    "tp_allreduce_seconds",
    "weak_scaling",
    "weight_units",
    "zone_a_size",
    "zone_b_size",
    "zone_c_sizes",
]
