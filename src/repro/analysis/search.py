"""Configuration search (paper Sec. 5.3 / Fig. 10).

For every scheme the paper searches the (pipeline size, data-parallel
size) grid — plus the wave count for Hanayo — and reports each cell's
throughput, marking OOM cells.  :func:`search_grid` reproduces that
table; :func:`best_config` picks the winner the scaling figures use.

The search is **total-batch-centric**: a layout ``(P, D)`` splits the
job's ``total_batch`` sequences into ``D`` pipeline shards of
``total_batch / D`` sequences, which are then cut into micro-batches.
This keeps every cell processing the same work, so throughputs are
comparable — the fairness rule of Sec. 5.3.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.presets import Cluster
from ..errors import ConfigError
from ..models.spec import ModelSpec
from .throughput import ThroughputResult, measure_throughput

#: wave counts the paper explores (H-2 / H-4 / H-8 in Fig. 9)
DEFAULT_WAVES = (1, 2, 4, 8)


@dataclass(frozen=True)
class SearchCell:
    """One (P, D, variant) point of the search grid."""

    p: int
    d: int
    w: int
    result: ThroughputResult

    @property
    def throughput(self) -> float:
        return self.result.seq_per_s if self.result.seq_per_s else 0.0


def feasible_waves(model: ModelSpec, p: int,
                   waves: tuple[int, ...] = DEFAULT_WAVES) -> list[int]:
    """Wave counts with at least one layer per stage."""
    total_layers = model.num_layers + 2  # embedding + head
    return [w for w in waves if 2 * w * p <= total_layers]


def split_batch(total_batch: int, d: int, p: int, scheme: str,
                target_microbatches: int | None = None) -> tuple[int, int] | None:
    """(num_microbatches, microbatch_size) for one pipeline shard.

    Returns None when the layout cannot host the batch (fewer sequences
    than DP shards, or an odd micro-batch count for a bidirectional
    scheme that cannot be fixed by merging).
    """
    per_pipeline = total_batch // d
    if per_pipeline < 1:
        return None
    target = target_microbatches if target_microbatches else p
    b = min(per_pipeline, target)
    if scheme in ("chimera", "chimera-wave", "gems"):
        if b % 2:
            b -= 1
        if b < 2:
            return None
    mb_size = per_pipeline // b
    return b, mb_size


def search_grid(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    layouts: tuple[tuple[int, int], ...],
    total_batch: int,
    target_microbatches: int | None = None,
    waves: tuple[int, ...] = DEFAULT_WAVES,
) -> list[SearchCell]:
    """Evaluate a scheme over (P, D) layouts, searching waves for Hanayo.

    Infeasible cells (layout cannot host the batch, or the model has too
    few layers for the stage count) are skipped, mirroring the paper's
    empty grid slots.
    """
    cells: list[SearchCell] = []
    for p, d in layouts:
        if p * d > cluster.num_devices:
            raise ConfigError(
                f"layout ({p},{d}) exceeds cluster {cluster.name}"
            )
        shape = split_batch(total_batch, d, p, scheme, target_microbatches)
        if shape is None:
            continue
        b, mb_size = shape
        wave_options = (
            feasible_waves(model, p, waves) if scheme == "hanayo" else [1]
        )
        for w in wave_options:
            try:
                result = measure_throughput(
                    scheme, cluster, model, p=p, d=d, w=w,
                    num_microbatches=b, microbatch_size=mb_size,
                )
            except ConfigError:
                continue
            cells.append(SearchCell(p=p, d=d, w=w, result=result))
    return cells


def best_config(cells: list[SearchCell]) -> SearchCell:
    """Highest-throughput non-OOM cell."""
    alive = [c for c in cells if not c.result.oom]
    if not alive:
        raise ConfigError("every searched configuration OOMs")
    return max(alive, key=lambda c: c.throughput)


def best_throughput(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    layouts: tuple[tuple[int, int], ...],
    total_batch: int,
    target_microbatches: int | None = None,
    waves: tuple[int, ...] = DEFAULT_WAVES,
) -> SearchCell:
    """Search then pick, in one call (what the scaling figures do)."""
    cells = search_grid(scheme, cluster, model, layouts, total_batch,
                        target_microbatches, waves)
    return best_config(cells)
