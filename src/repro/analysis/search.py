"""Configuration search (paper Sec. 5.3 / Fig. 10).

For every scheme the paper searches the (pipeline size, data-parallel
size) grid — plus the wave count for Hanayo — and reports each cell's
throughput, marking OOM cells.  :func:`search_grid` reproduces that
table; :func:`best_config` picks the winner the scaling figures use.

The search is **total-batch-centric**: a layout ``(P, D)`` splits the
job's ``total_batch`` sequences into ``D`` pipeline shards of
``total_batch / D`` sequences, which are then cut into micro-batches
with no remainder.  This keeps every cell processing the same work, so
throughputs are comparable — the fairness rule of Sec. 5.3 (see
:func:`repro.sweep.split_batch`, where the rule now lives).

Since the sweep-engine refactor these functions are thin wrappers over
:mod:`repro.sweep`: they accept optional ``cache`` and ``workers``
arguments that enable on-disk result reuse and multiprocessing fan-out
while keeping the original serial, uncached behaviour as the default.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.presets import Cluster
from ..errors import ConfigError
from ..models.spec import ModelSpec
from ..sweep.cache import ResultCache
from ..sweep.engine import run_sweep
from ..sweep.spec import DEFAULT_WAVES, SweepSpec, feasible_waves, split_batch
from .throughput import ThroughputResult

__all__ = [
    "DEFAULT_WAVES",
    "SearchCell",
    "best_config",
    "best_throughput",
    "feasible_waves",
    "search_grid",
    "split_batch",
]


@dataclass(frozen=True)
class SearchCell:
    """One (P, D, variant) point of the search grid."""

    p: int
    d: int
    w: int
    result: ThroughputResult

    @property
    def throughput(self) -> float:
        return self.result.seq_per_s if self.result.seq_per_s else 0.0


def search_grid(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    layouts: tuple[tuple[int, int], ...],
    total_batch: int,
    target_microbatches: int | None = None,
    waves: tuple[int, ...] = DEFAULT_WAVES,
    *,
    cache: ResultCache | None = None,
    workers: int | None = None,
) -> list[SearchCell]:
    """Evaluate a scheme over (P, D) layouts, searching waves for Hanayo.

    Infeasible cells (layout cannot host the batch fairly, or the model
    has too few layers for the stage count) are skipped, mirroring the
    paper's empty grid slots.  Runs on the :mod:`repro.sweep` engine;
    pass ``cache`` / ``workers`` to reuse results across calls or fan
    the grid out over processes.
    """
    spec = SweepSpec(
        schemes=(scheme,),
        clusters=(cluster,),
        models=(model,),
        layouts=tuple(layouts),
        total_batches=(total_batch,),
        waves=tuple(waves),
        target_microbatches=target_microbatches,
        skip_oversized=False,
    )
    table = run_sweep(spec, cache=cache, workers=workers)
    return [SearchCell(p=row.p, d=row.d, w=row.w, result=row.result)
            for row in table.rows]


def best_config(cells: list[SearchCell]) -> SearchCell:
    """Highest-throughput non-OOM cell."""
    alive = [c for c in cells if not c.result.oom]
    if not alive:
        raise ConfigError("every searched configuration OOMs")
    return max(alive, key=lambda c: c.throughput)


def best_throughput(
    scheme: str,
    cluster: Cluster,
    model: ModelSpec,
    layouts: tuple[tuple[int, int], ...],
    total_batch: int,
    target_microbatches: int | None = None,
    waves: tuple[int, ...] = DEFAULT_WAVES,
    *,
    cache: ResultCache | None = None,
    workers: int | None = None,
) -> SearchCell:
    """Search then pick, in one call (what the scaling figures do)."""
    cells = search_grid(scheme, cluster, model, layouts, total_batch,
                        target_microbatches, waves,
                        cache=cache, workers=workers)
    return best_config(cells)
