"""Bubble-zone decomposition of wave pipelines (paper Fig. 7 / Sec. 3.4).

Four bubble species appear in a Hanayo iteration:

* **Zone A** — waiting for forward activations from a peer; single
  bubble size ``T_F / 2W + T_C``.
* **Zone B** — the forward/backward duration mismatch; size
  ``(P − LR) / 2W · (T_B − T_F) + 2 T_C`` at local rank ``LR``.
* **Zone C** — waiting on backward chains; sizes ``T_B + 2T_C`` and
  ``T_B + T_C``.
* **Zone D** — cross-communication batching stalls (NCCL grouping).

The empirical classifier walks a simulated timeline and attributes each
idle gap to a zone by the ops flanking it, so the analytic sizes above
can be checked against executed schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..types import OpKind, Timeline


@dataclass(frozen=True)
class ZoneBreakdown:
    """Idle time attributed to each bubble zone, per iteration."""

    zone_a: float   # idle before a forward
    zone_b: float   # idle between forward phase and backward phase
    zone_c: float   # idle between backwards
    tail: float     # idle after a device's last op until makespan

    @property
    def total(self) -> float:
        return self.zone_a + self.zone_b + self.zone_c + self.tail


def zone_a_size(p: int, w: int, t_f: float = 1.0, t_c: float = 0.0) -> float:
    """Analytic single-bubble size in Zone A: ``T_F / 2W + T_C``."""
    if w < 1 or p < 2:
        raise ConfigError("need W >= 1 and P >= 2")
    return t_f / (2.0 * w) + t_c


def zone_b_size(p: int, w: int, local_rank: int, t_f: float = 1.0,
                t_b: float = 2.0, t_c: float = 0.0) -> float:
    """Analytic Zone-B bubble at ``local_rank``:
    ``(P − LR)/2W · (T_B − T_F) + 2 T_C``."""
    if not (0 <= local_rank < p):
        raise ConfigError(f"local rank {local_rank} outside [0, {p})")
    return (p - local_rank) / (2.0 * w) * (t_b - t_f) + 2.0 * t_c


def zone_c_sizes(t_b: float = 2.0, t_c: float = 0.0) -> tuple[float, float]:
    """Analytic Zone-C bubble sizes: ``T_B + 2T_C`` and ``T_B + T_C``."""
    return (t_b + 2.0 * t_c, t_b + t_c)


def classify_idle(timeline: Timeline) -> ZoneBreakdown:
    """Attribute every idle gap in a timeline to a bubble zone.

    Gap taxonomy by flanking op kinds: a gap ending in a forward is
    Zone A (waiting for an activation); forward→backward gaps are
    Zone B (the F/B mismatch at the phase boundary); backward→backward
    gaps are Zone C.  Idle after the device's last op (the flush skew)
    is reported separately as ``tail``.
    """
    makespan = timeline.makespan
    a = b = c = tail = 0.0
    for d in timeline.devices:
        spans = timeline.device_spans(d)
        prev_end = 0.0
        prev_kind: OpKind | None = None
        for span in spans:
            gap = span.start - prev_end
            if gap > 1e-12:
                if span.op.kind is OpKind.FORWARD:
                    a += gap
                elif prev_kind is OpKind.FORWARD or prev_kind is None:
                    b += gap
                else:
                    c += gap
            prev_end = span.end
            prev_kind = span.op.kind
        tail += max(0.0, makespan - prev_end)
    return ZoneBreakdown(zone_a=a, zone_b=b, zone_c=c, tail=tail)
