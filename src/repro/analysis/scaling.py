"""Weak- and strong-scaling harnesses (paper Figs. 11 and 12).

* **Weak scaling** grows devices and total batch together (8→32 GPUs,
  batch 2→8 in the paper's units) and checks that throughput grows
  proportionally — parallel efficiency near 100%.
* **Strong scaling** fixes the batch (4, the Lonestar6 40 GB limit) and
  throws more GPUs at it; small per-pipeline micro-batch counts make
  bubbles — and scheme choice — matter most here, and GPipe/DAPPLE OOM
  at 8 GPUs just as the paper reports.

Both pick each scheme's best (P, D, W) per device count via the
Sec. 5.3 search.  Like the search itself, both harnesses run on the
:mod:`repro.sweep` engine and accept optional ``cache`` / ``workers``
arguments: a shared :class:`~repro.sweep.ResultCache` makes the twelve
``bench_fig*`` scripts stop recomputing each other's cells.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..models.spec import ModelSpec
from ..sweep.cache import ResultCache
from .search import SearchCell, best_throughput


@dataclass(frozen=True)
class ScalingPoint:
    """Best configuration of one scheme at one device count."""

    devices: int
    scheme: str
    cell: SearchCell | None     # None ⇔ every config OOM'd or infeasible

    @property
    def throughput(self) -> float | None:
        return None if self.cell is None else self.cell.throughput


def layouts_for(devices: int, min_pipeline: int = 4) -> tuple[tuple[int, int], ...]:
    """(P, D) combinations the paper searches at a device count."""
    opts = []
    p = devices
    while p >= min_pipeline:
        opts.append((p, devices // p))
        p //= 2
    return tuple(opts)


def _best(scheme: str, cluster, model: ModelSpec, devices: int,
          total_batch: int, target_microbatches: int | None,
          cache: ResultCache | None = None,
          workers: int | None = None) -> ScalingPoint:
    try:
        cell = best_throughput(
            scheme, cluster, model,
            layouts=layouts_for(devices),
            total_batch=total_batch,
            target_microbatches=target_microbatches,
            cache=cache, workers=workers,
        )
    except ConfigError:
        cell = None
    return ScalingPoint(devices=devices, scheme=scheme, cell=cell)


def weak_scaling(
    schemes: tuple[str, ...],
    cluster_factory,
    model: ModelSpec,
    device_counts: tuple[int, ...] = (8, 16, 32),
    base_batch: int = 8,
    target_microbatches: int | None = None,
    *,
    cache: ResultCache | None = None,
    workers: int | None = None,
) -> dict[str, list[ScalingPoint]]:
    """Scale devices and total batch together: batch ∝ devices."""
    smallest = min(device_counts)
    out: dict[str, list[ScalingPoint]] = {s: [] for s in schemes}
    for devices in device_counts:
        total_batch = base_batch * devices // smallest
        cluster = cluster_factory(devices)
        for scheme in schemes:
            out[scheme].append(
                _best(scheme, cluster, model, devices, total_batch,
                      target_microbatches, cache, workers)
            )
    return out


def strong_scaling(
    schemes: tuple[str, ...],
    cluster_factory,
    model: ModelSpec,
    device_counts: tuple[int, ...] = (8, 16, 32),
    total_batch: int = 8,
    target_microbatches: int | None = None,
    *,
    cache: ResultCache | None = None,
    workers: int | None = None,
) -> dict[str, list[ScalingPoint]]:
    """Fixed total batch; more devices must split the same work."""
    out: dict[str, list[ScalingPoint]] = {s: [] for s in schemes}
    for devices in device_counts:
        cluster = cluster_factory(devices)
        for scheme in schemes:
            out[scheme].append(
                _best(scheme, cluster, model, devices, total_batch,
                      target_microbatches, cache, workers)
            )
    return out


def parallel_efficiency(points: list[ScalingPoint]) -> list[float]:
    """Throughput per device relative to the smallest configuration."""
    alive = [p for p in points if p.throughput]
    if not alive:
        return []
    base = alive[0]
    effs = []
    for p in alive[1:]:
        expected = base.throughput * p.devices / base.devices
        effs.append(p.throughput / expected)
    return effs


def speedup(points: list[ScalingPoint]) -> list[float]:
    """Throughput relative to the smallest device count (strong scaling)."""
    alive = [p for p in points if p.throughput]
    if not alive:
        return []
    base = alive[0].throughput
    return [p.throughput / base for p in alive]
