"""Lightweight phase timing for the measurement pipeline.

The CLI's ``--profile`` flag (``repro sweep --profile``, ``repro trace
--profile``) answers "where does a cell's wall time go?" with a
build / lower / simulate breakdown:

* **build** — schedule generation + cost-model lowering
  (``build_schedule`` / ``stage_costs``);
* **lower** — Program compilation + :class:`ExecutablePlan` lowering or
  re-timing (cache hits spend almost nothing here);
* **simulate** — the event loop itself.

Profiling is strictly opt-in and process-local: when disabled (the
default) the instrumentation points cost one attribute check.  The
harness functions report phases via :func:`phase`; drivers group them
into named cells via :func:`cell`; :func:`profiled` scopes a collection
run and returns the records.

>>> with profiled() as prof:
...     with cell("demo"):
...         with phase("build"):
...             pass
>>> [name for name, _ in prof.cells]
['demo']
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

#: phase display order in reports
PHASES = ("build", "lower", "simulate")

_active: "PhaseProfile | None" = None


@dataclass
class PhaseProfile:
    """Collected cells: ``(label, {phase: seconds})`` in finish order."""

    cells: list[tuple[str, dict[str, float]]] = field(default_factory=list)
    _open: dict[str, float] | None = None

    def total(self, name: str) -> float:
        return sum(c.get(name, 0.0) for _, c in self.cells)

    def format(self, top: int | None = None) -> str:
        """Render the per-cell phase table (milliseconds)."""
        from .analysis.report import format_table

        cells = self.cells if top is None else self.cells[:top]
        rows = []
        for label, phases in cells:
            total = sum(phases.values())
            rows.append([label]
                        + [f"{phases.get(p, 0.0) * 1e3:8.2f}" for p in PHASES]
                        + [f"{total * 1e3:8.2f}"])
        rows.append(["TOTAL"]
                    + [f"{self.total(p) * 1e3:8.2f}" for p in PHASES]
                    + [f"{sum(sum(c.values()) for _, c in self.cells) * 1e3:8.2f}"])
        return format_table(
            ["cell"] + [f"{p} ms" for p in PHASES] + ["total ms"], rows,
            title="phase timing (build / lower / simulate per cell)",
        )


@contextmanager
def profiled():
    """Collect phases for the duration of the block.

    Yields the :class:`PhaseProfile`; nested use keeps the outermost
    collector (profiling is a driver concern, not a library one).
    """
    global _active
    if _active is not None:
        yield _active
        return
    prof = PhaseProfile()
    _active = prof
    try:
        yield prof
    finally:
        _active = None


@contextmanager
def cell(label: str):
    """Group subsequent :func:`phase` reports under one named cell."""
    prof = _active
    if prof is None or prof._open is not None:
        yield
        return
    phases: dict[str, float] = {}
    prof._open = phases
    try:
        yield
    finally:
        prof._open = None
        prof.cells.append((label, phases))


@contextmanager
def phase(name: str):
    """Attribute the block's wall time to ``name`` in the open cell."""
    prof = _active
    if prof is None or prof._open is None:
        yield
        return
    t0 = time.perf_counter()
    try:
        yield
    finally:
        acc = prof._open
        acc[name] = acc.get(name, 0.0) + (time.perf_counter() - t0)


@dataclass
class BatchingStats:
    """Process-lifetime counters for the batched execution layer.

    Unlike phase timing these are always on (plain counter bumps) so
    ``--profile`` runs can report how much work took the lockstep path
    versus the scalar fallback without instrumenting every call site.
    """

    batches: int = 0
    lanes: int = 0
    scalar_cells: int = 0
    batched_s: float = 0.0
    scalar_s: float = 0.0
    #: lanes the time-ordered vector replay recovered — work that would
    #: have fallen back scalar before it existed (contention lanes with
    #: divergent wire-grant orders, full-detail contention, mid-run
    #: capacity aborts under contention); counted *inside* the batched
    #: totals above, broken out so recovery coverage is visible
    recovered_batches: int = 0
    recovered_lanes: int = 0
    recovered_s: float = 0.0
    #: lane-count -> number of batches executed at that occupancy
    occupancy: dict[int, int] = field(default_factory=dict)
    #: why cells fell back scalar: reason -> cell count.  The taxonomy
    #: (``singleton`` / ``tp>1`` / ``deadlock`` /
    #: ``structure-divergence``) makes batch-coverage regressions
    #: visible — a future change that silently de-batches a shape shows
    #: up here before it shows up in wall time.
    fallback_reasons: dict[str, int] = field(default_factory=dict)
    #: reason -> wall seconds spent in that scalar fallback: a rare
    #: reason burning most of the time ranks above a frequent cheap one
    fallback_s: dict[str, float] = field(default_factory=dict)
    #: queries the serving layer answered from an identical in-flight
    #: query's result instead of executing anything (single-flight)
    dedup_hits: int = 0

    def record_batch(self, lanes: int, seconds: float) -> None:
        self.batches += 1
        self.lanes += lanes
        self.batched_s += seconds
        self.occupancy[lanes] = self.occupancy.get(lanes, 0) + 1

    def record_recovered(self, lanes: int, seconds: float) -> None:
        """Count one time-ordered replay batch of ``lanes`` lanes.

        A recovered batch *is* a batch — it bumps the batched totals
        and the occupancy histogram too, so occupancy keeps summing to
        every batched lane — and additionally the recovery counters.
        """
        self.record_batch(lanes, seconds)
        self.recovered_batches += 1
        self.recovered_lanes += lanes
        self.recovered_s += seconds

    def record_scalar(self, cells: int, seconds: float,
                      reason: str = "singleton") -> None:
        self.scalar_cells += cells
        self.scalar_s += seconds
        self.fallback_reasons[reason] = \
            self.fallback_reasons.get(reason, 0) + cells
        self.fallback_s[reason] = \
            self.fallback_s.get(reason, 0.0) + seconds

    def record_dedup(self, queries: int = 1) -> None:
        self.dedup_hits += queries

    def reset(self) -> None:
        self.batches = 0
        self.lanes = 0
        self.scalar_cells = 0
        self.batched_s = 0.0
        self.scalar_s = 0.0
        self.recovered_batches = 0
        self.recovered_lanes = 0
        self.recovered_s = 0.0
        self.occupancy.clear()
        self.fallback_reasons.clear()
        self.fallback_s.clear()
        self.dedup_hits = 0

    def describe(self) -> str:
        """One-line summary, lane-occupancy and fallback histograms."""
        hist = " ".join(f"{n}x{count}" for n, count in
                        sorted(self.occupancy.items()))
        reasons = " ".join(
            f"{name}={count}/{self.fallback_s.get(name, 0.0) * 1e3:.1f}ms"
            for name, count in sorted(self.fallback_reasons.items()))
        text = (f"batched execution: {self.batches} batches, "
                f"{self.lanes} lanes "
                f"({self.batched_s * 1e3:.1f} ms batched, "
                f"{self.scalar_cells} cells / "
                f"{self.scalar_s * 1e3:.1f} ms scalar); "
                f"occupancy [{hist}]; fallbacks [{reasons}]")
        if self.recovered_lanes:
            text += (f"; recovered {self.recovered_lanes} lanes in "
                     f"{self.recovered_batches} time-ordered replays "
                     f"({self.recovered_s * 1e3:.1f} ms)")
        if self.dedup_hits:
            text += f"; dedup hits {self.dedup_hits}"
        return text


_batching = BatchingStats()


def batching_stats() -> BatchingStats:
    """The process-global batched-vs-scalar execution counters."""
    return _batching


def record_batch(lanes: int, seconds: float) -> None:
    """Count one lockstep batch of ``lanes`` lanes taking ``seconds``."""
    _batching.record_batch(lanes, seconds)


def record_recovered(lanes: int, seconds: float) -> None:
    """Count one time-ordered vector replay of ``lanes`` lanes."""
    _batching.record_recovered(lanes, seconds)


def record_scalar(cells: int, seconds: float,
                  reason: str = "singleton") -> None:
    """Count ``cells`` cells executed through the scalar fallback.

    ``reason`` names why the vectorized paths were not taken — one of
    ``singleton`` / ``tp>1`` / ``deadlock`` / ``structure-divergence``
    — with wall time attributed per reason alongside the cell counts.
    """
    _batching.record_scalar(cells, seconds, reason)


#: per-kind latency samples retained for percentile estimates; the
#: reservoir keeps the most recent window so long-lived servers report
#: current behaviour, not their start-up transient
LATENCY_WINDOW = 4096


@dataclass
class ServeStats:
    """Counters for the serving layer (``repro serve``).

    Everything here is written from many threads — handler threads
    record query latencies, the micro-batch dispatcher records queue
    depth and dispatch occupancy — so every mutation takes the lock.
    ``describe()`` is what ``repro serve --profile`` prints at drain
    (alongside :func:`batching_stats` and the plan cache).
    """

    queries: int = 0
    errors: int = 0
    dedup_hits: int = 0
    #: deepest the micro-batch queue ever got
    max_queue_depth: int = 0
    #: dispatcher wake-ups that executed work
    dispatches: int = 0
    #: measurement lanes (grid cells) per dispatch -> dispatch count
    dispatch_occupancy: dict[int, int] = field(default_factory=dict)
    #: query kind ("advise" / "sweep") -> recent latency samples
    latencies: dict[str, list[float]] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def record_query(self, kind: str, seconds: float) -> None:
        with self._lock:
            self.queries += 1
            window = self.latencies.setdefault(kind, [])
            window.append(seconds)
            if len(window) > LATENCY_WINDOW:
                del window[: len(window) - LATENCY_WINDOW]

    def record_error(self) -> None:
        with self._lock:
            self.errors += 1

    def record_dedup(self) -> None:
        with self._lock:
            self.dedup_hits += 1
        _batching.record_dedup()

    def record_dispatch(self, lanes: int, queue_depth: int) -> None:
        with self._lock:
            self.dispatches += 1
            self.dispatch_occupancy[lanes] = \
                self.dispatch_occupancy.get(lanes, 0) + 1
            self.max_queue_depth = max(self.max_queue_depth, queue_depth)

    def percentile(self, kind: str, q: float) -> float | None:
        """The ``q``-quantile (0..1) of ``kind``'s recent latencies."""
        with self._lock:
            window = sorted(self.latencies.get(kind, ()))
        if not window:
            return None
        index = min(len(window) - 1, int(q * len(window)))
        return window[index]

    def snapshot(self) -> dict:
        """A JSON-safe view for the ``/stats`` endpoint."""
        with self._lock:
            kinds = {
                kind: len(window) for kind, window in self.latencies.items()
            }
            out = {
                "queries": self.queries,
                "errors": self.errors,
                "dedup_hits": self.dedup_hits,
                "max_queue_depth": self.max_queue_depth,
                "dispatches": self.dispatches,
                "dispatch_occupancy": {
                    str(n): c
                    for n, c in sorted(self.dispatch_occupancy.items())
                },
            }
        out["latency"] = {
            kind: {
                "samples": kinds[kind],
                "p50_ms": round(self.percentile(kind, 0.50) * 1e3, 3),
                "p99_ms": round(self.percentile(kind, 0.99) * 1e3, 3),
            }
            for kind in sorted(kinds)
        }
        return out

    def reset(self) -> None:
        with self._lock:
            self.queries = 0
            self.errors = 0
            self.dedup_hits = 0
            self.max_queue_depth = 0
            self.dispatches = 0
            self.dispatch_occupancy.clear()
            self.latencies.clear()

    def describe(self) -> str:
        """Multi-line summary: totals, occupancy histogram, percentiles."""
        snap = self.snapshot()
        hist = " ".join(f"{n}x{c}" for n, c in
                        snap["dispatch_occupancy"].items())
        lines = [
            f"serve: {snap['queries']} queries "
            f"({snap['errors']} errors, {snap['dedup_hits']} dedup hits), "
            f"{snap['dispatches']} dispatches, "
            f"max queue depth {snap['max_queue_depth']}; "
            f"dispatch occupancy [{hist}]"
        ]
        for kind, lat in snap["latency"].items():
            lines.append(
                f"  {kind}: {lat['samples']} sampled, "
                f"p50 {lat['p50_ms']:.1f} ms, p99 {lat['p99_ms']:.1f} ms")
        return "\n".join(lines)


_serve = ServeStats()


def serve_stats() -> ServeStats:
    """The process-global serving-layer counters."""
    return _serve
