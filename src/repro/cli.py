"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``gallery``   render a scheme's schedule as an ASCII Gantt chart
``simulate``  simulate a configuration and print bubble/makespan stats
``advise``    search (scheme, P, D, W) for a model on a cluster
``serve``     long-lived advisor daemon over hot caches (repro.serve)
``query``     client for a running ``repro serve`` daemon
``sweep``     parallel, cached multi-scheme grid sweep (repro.sweep)
``trace``     export a simulated schedule as a Chrome/Perfetto trace
``train``     run a real (NumPy) pipeline training step and verify it
"""

from __future__ import annotations

import argparse
import sys

from .analysis import format_table
from .config import CostConfig, PipelineConfig
from .errors import ConfigError, ReproError
from .runtime import AbstractCosts, bubble_stats, simulate


def _add_shape_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scheme", default="hanayo",
                   help="pipeline scheme (default: hanayo)")
    p.add_argument("-p", "--devices", type=int, default=4)
    p.add_argument("-b", "--microbatches", type=int, default=4)
    p.add_argument("-w", "--waves", type=int, default=1)
    p.add_argument("--t-c", type=float, default=0.0,
                   help="abstract P2P cost (T_F units)")


def _build(args, run=None) -> tuple:
    from . import profiling
    from .schedules import build_schedule
    cfg = PipelineConfig(
        scheme=args.scheme, num_devices=args.devices,
        num_microbatches=args.microbatches, num_waves=args.waves,
    )
    costs = CostConfig(t_c=args.t_c)
    with profiling.phase("build"):
        sched = build_schedule(cfg, costs)
    oracle = AbstractCosts(costs, cfg.num_devices, sched.num_stages)
    return cfg, sched, simulate(sched, oracle, run)


def cmd_gallery(args) -> int:
    from .viz import render_gantt
    _, sched, res = _build(args)
    stats = bubble_stats(res.timeline)
    print(sched.describe())
    print(f"makespan={res.makespan:.2f}  "
          f"bubble={stats.bubble_ratio * 100:.1f}%")
    print(render_gantt(res.timeline, width=args.width))
    return 0


def cmd_simulate(args) -> int:
    _, sched, res = _build(args)
    stats = bubble_stats(res.timeline)
    rows = [[d, f"{stats.busy[d]:.2f}", f"{stats.idle[d]:.2f}",
             f"{stats.per_device_ratio[d] * 100:.1f}%"]
            for d in sorted(stats.busy)]
    print(format_table(
        ["device", "busy", "idle", "bubble"],
        rows,
        title=(f"{sched.describe()}  makespan={res.makespan:.2f}  "
               f"aggregate bubble={stats.bubble_ratio * 100:.1f}%"),
    ))
    return 0


def cmd_trace(args) -> int:
    from . import profiling
    from .config import RunConfig

    run = RunConfig(prefetch=not args.no_prefetch,
                    contention=args.contention)
    if args.profile:
        # collect the build / lower / simulate split of this one cell
        profiling.batching_stats().reset()
        with profiling.profiled() as prof:
            with profiling.cell(_trace_label(args)):
                rc = _trace_body(args, run)
        print(prof.format())
        print(profiling.batching_stats().describe())
        return rc
    return _trace_body(args, run)


def _trace_label(args) -> str:
    where = args.cluster if args.cluster else "abstract"
    return (f"{args.scheme}/{where} P{args.devices} B{args.microbatches}"
            + (f" D{args.dp}" if args.dp > 1 else "")
            + (f" TP{args.tp}" if args.tp > 1 else ""))


def _trace_body(args, run) -> int:
    from .viz.trace import write_sim_trace
    if args.cluster:
        # Concrete triple: scheme on a modeled cluster running a model.
        # Comm time comes from the cluster topology, so the abstract
        # --t-c knob does not apply (mirrors `repro advise`/`sweep`).
        if args.t_c:
            print("note: --t-c is ignored with --cluster "
                  "(topology provides transfer times)", file=sys.stderr)
        from .analysis import HybridLayout, build_hybrid_simulation
        from .cluster import get_cluster
        from .models import bert_64, gpt_128, tiny_model
        from .runtime import simulate_program

        model = {"bert": bert_64, "gpt": gpt_128,
                 "tiny": tiny_model}[args.model]()
        cluster = get_cluster(args.cluster,
                              args.devices * args.dp * args.tp)
        layout = HybridLayout(tp=args.tp, p=args.devices, d=args.dp)
        # One build path with the throughput harness: DP gradient rings
        # and TP boundary all-reduces are compiled into the program, so
        # the trace shows the collective lanes the figures measure.
        cell = build_hybrid_simulation(
            args.scheme, cluster, model, layout,
            num_microbatches=args.microbatches, w=args.waves, run=run,
        )
        capacity = (int(args.capacity_gib * 2**30)
                    if args.capacity_gib is not None else None)
        res = simulate_program(cell.program, cell.oracle, run,
                               schedule=cell.schedule, plan=cell.plan,
                               capacity_bytes=capacity)
        unit = 1e6  # concrete costs are in seconds
        what = f"{args.scheme}/{cluster.name}/{model.name}"
        if args.dp > 1 or args.tp > 1:
            what += f" ({layout.describe()})"
    else:
        if args.capacity_gib is not None:
            print("note: --capacity-gib needs --cluster (abstract costs "
                  "carry no bytes); ignored", file=sys.stderr)
        if args.dp > 1 or args.tp > 1:
            print("note: --dp/--tp need --cluster (collective rings "
                  "route over a topology); ignored", file=sys.stderr)
        _, sched, res = _build(args, run)
        unit = 1000.0
        what = f"{args.scheme} (abstract costs)"
    write_sim_trace(res, args.output, time_unit_us=unit)
    spans = sum(len(s) for s in res.timeline.spans.values())
    extra = ""
    if res.memory is not None:
        extra = f", peak mem {res.memory.highest_peak / 2**30:.1f} GiB"
    if res.collectives:
        extra += f", {len(res.collectives)} collectives"
    print(f"wrote {args.output} for {what} "
          f"({spans} compute spans, {len(res.comm)} transfers{extra}); "
          "open it at https://ui.perfetto.dev")
    return 0


def cmd_advise(args) -> int:
    # the exact expansion + folding the server runs (repro.serve.queries),
    # so `repro advise --json` and a served /advise answer for the same
    # query are the same bytes
    from .serve.codec import AdviseQuery, dumps_canonical
    from .serve.queries import advise_answer, format_advise

    query = AdviseQuery.make(
        cluster=args.cluster, model=args.model, devices=args.devices,
        batch=args.batch, tp=args.tp, dp=args.dp, top=args.top,
        capacity_gib=args.capacity_gib, contention=args.contention,
    )
    payload = advise_answer(query)
    if args.json:
        sys.stdout.buffer.write(dumps_canonical(payload))
        sys.stdout.buffer.flush()
    else:
        print(format_advise(payload))
    return 0


def cmd_serve(args) -> int:
    from . import profiling
    from .serve.server import AdvisorServer, serve_until_signalled

    server = AdvisorServer(
        (args.host, args.port),
        window_s=args.window_ms / 1e3,
        max_lanes=args.max_lanes,
        coalesce=not args.no_batching,
        quiet=not args.verbose,
    )
    rc = serve_until_signalled(server)
    if args.profile:
        from .analysis import plan_cache
        print(profiling.batching_stats().describe())
        print(plan_cache().describe())
    return rc


def cmd_query(args) -> int:
    import json as _json
    from urllib.error import HTTPError, URLError
    from urllib.request import Request, urlopen

    from .serve.codec import AdviseQuery, SweepQuery, dumps_canonical

    base = args.server.rstrip("/")
    if not base.startswith("http"):
        base = "http://" + base
    if args.kind == "sweep":
        query = SweepQuery.make(
            schemes=args.schemes, cluster=args.cluster,
            models=args.models, devices=args.devices,
            batches=args.batch, tp=args.tp,
            capacity_gib=args.capacity_gib,
            contention=args.contention,
        )
    else:
        query = AdviseQuery.make(
            cluster=args.cluster, model=args.model,
            devices=args.devices, batch=args.batch[0], tp=args.tp[0],
            dp=args.dp, top=args.top, capacity_gib=args.capacity_gib,
            contention=args.contention,
        )
    request = Request(
        f"{base}/{args.kind}", data=dumps_canonical(query.to_payload()),
        headers={"Content-Type": "application/json"}, method="POST",
    )
    try:
        with urlopen(request, timeout=args.timeout) as response:
            if args.kind == "sweep":
                # NDJSON stream: progress frames, then the final table
                final = None
                for line in response:
                    frame = _json.loads(line)
                    if frame.get("kind") == "progress":
                        print(f"progress: {frame['done']}/{frame['total']}",
                              file=sys.stderr, flush=True)
                    elif frame.get("kind") == "error":
                        print(f"error: {frame['error']}", file=sys.stderr)
                        return 2
                    else:
                        final = line
                if final is None:
                    print("error: stream ended without an answer",
                          file=sys.stderr)
                    return 2
                sys.stdout.buffer.write(final)
            else:
                sys.stdout.buffer.write(response.read())
            sys.stdout.buffer.flush()
    except HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace").strip()
        print(f"error: server said {exc.code}: {detail}", file=sys.stderr)
        return 2
    except URLError as exc:
        print(f"error: cannot reach {base}: {exc.reason}", file=sys.stderr)
        return 2
    return 0


def _parse_layouts(text: str) -> tuple[tuple[int, ...], ...]:
    """Parse ``"8x1,4x2"`` into ``((8, 1), (4, 2))``.

    A third component pins a cell's tensor-parallel degree:
    ``"4x1x2"`` is (P=4, D=1, TP=2), exempt from the ``--tp`` cross.
    """
    layouts = []
    for token in text.split(","):
        parts = token.lower().strip().split("x")
        if (len(parts) not in (2, 3)
                or not all(t.strip().isdigit() for t in parts)):
            raise ConfigError(
                f"bad layout {token!r}; expected PxD pairs like 8x1,4x2 "
                "(or PxDxTP triples)"
            )
        layouts.append(tuple(int(t) for t in parts))
    return tuple(layouts)


def cmd_sweep(args) -> int:
    from .analysis import layouts_for
    from .cluster import get_cluster
    from .models import bert_64, gpt_128, tiny_model
    from .sweep import ResultCache, SweepSpec, run_sweep

    factories = {"bert": bert_64, "gpt": gpt_128, "tiny": tiny_model}
    models = tuple(factories[name]() for name in args.models)
    clusters = tuple(get_cluster(name, args.devices)
                     for name in args.clusters)
    tps = tuple(dict.fromkeys(args.tp))
    if args.layouts:
        layouts = _parse_layouts(args.layouts)
    elif args.dp or any(t > 1 for t in tps):
        # Hybrid layouts without Python: each requested DP width (all
        # power-of-two widths when --dp is omitted) is paired with the
        # deepest pipeline that exactly fills the cluster *per TP
        # degree* — (P, D, TP) triples, so the spec does not re-cross
        # a depth derived for one degree with the others.
        dps = tuple(args.dp) if args.dp else tuple(
            dict.fromkeys(d for _p, d in layouts_for(args.devices)))
        layouts = tuple(sorted(
            {(args.devices // (d * t), d, t)
             for d in dps for t in tps
             if args.devices % (d * t) == 0 and args.devices // (d * t) >= 2},
            reverse=True,
        ))
        if not layouts:
            raise ConfigError(
                f"no (P, D) layout fits {args.devices} devices with "
                f"--dp {args.dp} --tp {list(tps)}"
            )
    else:
        layouts = layouts_for(args.devices)
    spec = SweepSpec(
        schemes=tuple(args.schemes),
        clusters=clusters,
        models=models,
        layouts=layouts,
        total_batches=tuple(args.batch),
        waves=tuple(args.sweep_waves),
        tensor_parallel=tps,
        target_microbatches=args.target_microbatches,
        overlap=args.overlap,
        capacity_bytes=(int(args.capacity_gib * 2**30)
                        if args.capacity_gib is not None else None),
        contention=args.contention,
        # explicitly requested layouts must error when they don't fit,
        # not vanish into an empty table
        skip_oversized=args.layouts is None,
    )
    cache = ResultCache(args.cache) if args.cache else None
    prof = None
    if args.profile:
        from . import profiling
        workers = args.workers
        if workers and workers > 1:
            print("note: --profile evaluates inline (phase timings are "
                  "collected in-process); ignoring -j", file=sys.stderr)
            workers = 1
        profiling.batching_stats().reset()
        with profiling.profiled() as prof:
            table = run_sweep(spec, cache=cache, workers=workers)
    else:
        table = run_sweep(spec, cache=cache, workers=args.workers)
    if args.csv:
        table.to_csv(args.csv)
        print(f"wrote {args.csv}")
    if args.json:
        table.to_json(args.json)
        print(f"wrote {args.json}")
    print(table.format(title=spec.describe(), top=args.top))
    print(table.stats.describe())
    if prof is not None:
        from . import profiling
        from .analysis import plan_cache
        print(prof.format())
        print(plan_cache().describe())
        print(profiling.batching_stats().describe())
    if not table.rows:
        print("no feasible cells: every combination was rejected at "
              "expansion or measurement (check --batch divisibility, "
              "--layouts, and scheme shape constraints)",
              file=sys.stderr)
    return 0


#: (scheme, waves) candidates for ``synthesize --all-families``; shapes
#: a family cannot take (odd P for chimera, odd B for gems, ...) are
#: skipped at build time.
_SYNTH_FAMILIES = (
    ("gpipe", 1), ("dapple", 1), ("interleaved", 2), ("gems", 1),
    ("chimera", 1), ("chimera-wave", 2), ("hanayo", 1), ("hanayo", 2),
    ("async-1f1b", 1),
)


def cmd_synthesize(args) -> int:
    from .schedules import build_schedule
    from .synthesis import (
        SearchConfig,
        load_schedule,
        payload_for,
        replay_payload,
        save_schedule,
        synthesize,
        synthesize_families,
    )

    if args.replay:
        report = replay_payload(load_schedule(args.replay))
        print(report.describe())
        return 0 if report.consistent else 1

    sconf = SearchConfig(
        seed=args.seed, rounds=args.rounds,
        samples_per_round=args.samples, beam_width=args.beam,
        patience=args.patience, max_shift=args.max_shift,
    )
    cost = CostConfig(t_c=args.t_c)
    start = None if args.start == "program" else args.start

    def emit(result, config) -> None:
        if args.provenance:
            for step in result.best.provenance:
                print(f"  round {step.round:3d}  "
                      f"{step.mutation.describe():40s} "
                      f"-> {step.makespan:.3f}")
        if args.output:
            payload = payload_for(result, config, cost)
            save_schedule(args.output, payload)
            print(f"wrote {args.output} "
                  f"(plan {result.plan_key[:12]}…, seed {args.seed})")

    if args.all_families:
        built = {}
        for scheme, waves in _SYNTH_FAMILIES:
            try:
                cfg = PipelineConfig(
                    scheme=scheme, num_devices=args.devices,
                    num_microbatches=args.microbatches, num_waves=waves,
                )
                label = scheme + (f"-w{waves}" if waves > 1 else "")
                built[label] = (cfg, build_schedule(cfg, cost))
            except ConfigError:
                continue
        results = synthesize_families(
            {label: sched for label, (_, sched) in built.items()},
            lambda sched: AbstractCosts(cost, args.devices,
                                        sched.num_stages),
            sconf, start=start,
        )
        rows = [
            [label, f"{r.start.makespan:.2f}", f"{r.best.makespan:.2f}",
             f"{r.best.bubble_ratio * 100:.1f}%",
             len(r.best.provenance)]
            for label, r in sorted(results.items(),
                                   key=lambda kv: kv[1].best.makespan)
        ]
        print(format_table(
            ["family", "start", "best", "bubble", "mutations"], rows,
            title=(f"synthesize P={args.devices} B={args.microbatches} "
                   f"t_c={args.t_c} seed={args.seed}"),
        ))
        winner = min(results, key=lambda k: results[k].best.makespan)
        baseline = min(r.start.makespan for r in results.values())
        best = results[winner]
        print(f"winner: {winner} at {best.best.makespan:.2f} "
              f"(best compiled family: {baseline:.2f})")
        emit(best, built[winner][0])
        return 0

    cfg = PipelineConfig(
        scheme=args.scheme, num_devices=args.devices,
        num_microbatches=args.microbatches, num_waves=args.waves,
    )
    sched = build_schedule(cfg, cost)
    oracle = AbstractCosts(cost, cfg.num_devices, sched.num_stages)
    result = synthesize(sched, oracle, sconf, start=start)
    print(result.describe())
    emit(result, cfg)
    return 0


def cmd_train(args) -> int:
    import numpy as np

    from .engine import PipelineTrainer, make_batch, sequential_step
    from .models import tiny_model

    spec = tiny_model(num_layers=max(args.devices * 2 * args.waves, 4),
                      hidden=16, heads=2, seq_len=6, vocab=32)
    cfg = PipelineConfig(scheme=args.scheme, num_devices=args.devices,
                         num_microbatches=args.microbatches,
                         num_waves=args.waves)
    trainer = PipelineTrainer(spec, cfg, seed=0)
    inputs, targets = make_batch(spec, args.microbatches, seed=1)
    res = trainer.train_step(inputs, targets)
    ref = sequential_step(spec, trainer.schedule.num_stages, inputs,
                          targets, seed=0)
    worst = max(float(np.max(np.abs(res.grads[k] - ref.grads[k])))
                for k in ref.grads)
    print(f"pipeline loss {res.loss:.6f} / sequential {ref.loss:.6f} / "
          f"max grad diff {worst:.2e} / {res.messages_sent} messages")
    return 0 if worst < 1e-9 else 1


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hanayo (SC '23) wave pipeline parallelism, reproduced",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("gallery", help="ASCII Gantt of a schedule")
    _add_shape_args(g)
    g.add_argument("--width", type=int, default=100)
    g.set_defaults(fn=cmd_gallery)

    s = sub.add_parser("simulate", help="per-device bubble stats")
    _add_shape_args(s)
    s.set_defaults(fn=cmd_simulate)

    t = sub.add_parser("trace", help="export a Chrome/Perfetto trace")
    _add_shape_args(t)
    t.add_argument("-o", "--output", default="pipeline_trace.json")
    t.add_argument("--cluster", default=None,
                   choices=["PC", "FC", "TACC", "TC"],
                   help="simulate on a modeled cluster (concrete costs)")
    t.add_argument("--model", default="bert",
                   choices=["bert", "gpt", "tiny"],
                   help="model for --cluster runs")
    t.add_argument("--no-prefetch", action="store_true",
                   help="blocking receives (ablate Sec. 4.2 overlap)")
    t.add_argument("--contention", action="store_true",
                   help="serialize transfers sharing a device pair")
    t.add_argument("--capacity-gib", type=float, default=None,
                   help="abort the run at the first allocation past "
                        "this per-device capacity (needs --cluster)")
    t.add_argument("--dp", type=int, default=1,
                   help="data-parallel width: compile gradient-sync "
                        "rings into the traced program (needs --cluster)")
    t.add_argument("--tp", type=int, default=1,
                   help="tensor-parallel degree: compile TP boundary "
                        "all-reduces into the traced program "
                        "(needs --cluster)")
    t.add_argument("--profile", action="store_true",
                   help="print the build / lower / simulate phase-"
                        "timing breakdown of the traced cell")
    t.set_defaults(fn=cmd_trace)

    a = sub.add_parser("advise", help="configuration search")
    a.add_argument("--cluster", default="TACC",
                   choices=["PC", "FC", "TACC", "TC"])
    a.add_argument("--model", default="bert",
                   choices=["bert", "gpt", "tiny"])
    a.add_argument("-n", "--devices", type=int, default=8)
    a.add_argument("--batch", type=int, default=16)
    a.add_argument("--top", type=int, default=10)
    a.add_argument("--dp", type=int, nargs="+", default=None,
                   help="restrict the data-parallel widths searched")
    a.add_argument("--tp", type=int, default=1,
                   help="tensor-parallel degree (hybrid layouts)")
    a.add_argument("--capacity-gib", type=float, default=None,
                   help="override per-device memory for OOM verdicts")
    a.add_argument("--contention", action="store_true",
                   help="serialize transfers sharing a device pair")
    a.add_argument("--json", action="store_true",
                   help="emit the canonical JSON answer (byte-identical "
                        "to a served /advise answer of the same query)")
    a.set_defaults(fn=cmd_advise)

    sv = sub.add_parser(
        "serve", help="long-lived advisor daemon over hot caches")
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=8642,
                    help="listen port (0 picks a free one)")
    sv.add_argument("--window-ms", type=float, default=2.0,
                    help="micro-batch coalescing window")
    sv.add_argument("--max-lanes", type=int, default=512,
                    help="measurement lanes per micro-batch dispatch")
    sv.add_argument("--no-batching", action="store_true",
                    help="disable cross-query micro-batching (each "
                        "query measures in its own handler thread)")
    sv.add_argument("--profile", action="store_true",
                    help="print batching + plan-cache stats at drain")
    sv.add_argument("--verbose", action="store_true",
                    help="log each HTTP request to stderr")
    sv.set_defaults(fn=cmd_serve)

    q = sub.add_parser(
        "query", help="query a running `repro serve` daemon")
    q.add_argument("kind", choices=["advise", "sweep"],
                   help="question shape: one ranking or a full grid")
    q.add_argument("--server", default="127.0.0.1:8642",
                   help="host:port of the daemon")
    q.add_argument("--cluster", default="TACC",
                   choices=["PC", "FC", "TACC", "TC"])
    q.add_argument("--model", default="bert",
                   choices=["bert", "gpt", "tiny"],
                   help="model for advise queries")
    q.add_argument("--models", nargs="+", default=["bert"],
                   choices=["bert", "gpt", "tiny"],
                   help="models for sweep queries")
    q.add_argument("--schemes", nargs="+",
                   default=["gpipe", "dapple", "chimera-wave", "hanayo"],
                   help="schemes for sweep queries")
    q.add_argument("-n", "--devices", type=int, default=8)
    q.add_argument("--batch", type=int, nargs="+", default=[16],
                   help="total batch size(s); advise uses the first")
    q.add_argument("--tp", type=int, nargs="+", default=[1],
                   help="tensor-parallel degree(s); advise uses the first")
    q.add_argument("--dp", type=int, nargs="+", default=None,
                   help="restrict data-parallel widths (advise)")
    q.add_argument("--top", type=int, default=10)
    q.add_argument("--capacity-gib", type=float, default=None)
    q.add_argument("--contention", action="store_true",
                   help="serialize transfers sharing a device pair")
    q.add_argument("--timeout", type=float, default=120.0,
                   help="per-request socket timeout in seconds")
    q.set_defaults(fn=cmd_query)

    sw = sub.add_parser(
        "sweep", help="parallel, cached multi-scheme grid sweep")
    sw.add_argument("--schemes", nargs="+",
                    default=["gpipe", "dapple", "chimera-wave", "hanayo"])
    sw.add_argument("--clusters", nargs="+", default=["TACC"],
                    choices=["PC", "FC", "TACC", "TC"])
    sw.add_argument("--model", dest="models", nargs="+", default=["bert"],
                    choices=["bert", "gpt", "tiny"])
    sw.add_argument("-n", "--devices", type=int, default=8)
    sw.add_argument("--batch", type=int, nargs="+", default=[16],
                    help="total batch size(s) to sweep")
    sw.add_argument("--layouts", default=None,
                    help="PxD pairs like 8x1,4x2 (default: all for -n)")
    sw.add_argument("--dp", type=int, nargs="+", default=None,
                    help="data-parallel widths to sweep (derives P from "
                         "-n; overridden by --layouts)")
    sw.add_argument("--tp", type=int, nargs="+", default=[1],
                    help="tensor-parallel degrees to cross with every "
                         "layout (TP > 1 runs the hybrid harness)")
    sw.add_argument("--overlap", default="simulated",
                    choices=["simulated", "model"],
                    help="gradient-sync accounting: event-core measured "
                         "overlap (default) or the analytic closed form")
    sw.add_argument("--waves", dest="sweep_waves", type=int, nargs="+",
                    default=[1, 2, 4, 8],
                    help="wave counts searched for hanayo")
    sw.add_argument("--target-microbatches", type=int, default=None)
    sw.add_argument("--capacity-gib", type=float, default=None,
                    help="override per-device memory for OOM verdicts "
                         "(what-if smaller/larger cards)")
    sw.add_argument("--contention", action="store_true",
                    help="serialize transfers sharing a device pair "
                         "(contended lanes still batch via the "
                         "time-ordered replay)")
    sw.add_argument("-j", "--workers", type=int, default=1,
                    help="worker processes for uncached cells")
    sw.add_argument("--cache", default=None,
                    help="result-cache directory (reused across runs)")
    sw.add_argument("--csv", default=None, help="write results as CSV")
    sw.add_argument("--json", default=None, help="write results as JSON")
    sw.add_argument("--top", type=int, default=None,
                    help="print only the best N cells")
    sw.add_argument("--profile", action="store_true",
                    help="print a per-cell build / lower / simulate "
                         "phase-timing breakdown plus plan-cache stats "
                         "(forces inline evaluation)")
    sw.set_defaults(fn=cmd_sweep)

    sy = sub.add_parser(
        "synthesize",
        help="search for a faster legal ordering of a schedule")
    _add_shape_args(sy)
    sy.add_argument("--seed", type=int, default=0)
    sy.add_argument("--rounds", type=int, default=150)
    sy.add_argument("--samples", type=int, default=64,
                    help="mutation samples per round")
    sy.add_argument("--beam", type=int, default=8,
                    help="beam width (survivors per round)")
    sy.add_argument("--patience", type=int, default=30,
                    help="stop after this many stale rounds")
    sy.add_argument("--max-shift", type=int, default=8,
                    help="largest single-entry / wave shift sampled")
    sy.add_argument("--start", default="program",
                    choices=["program", "gpipe"],
                    help="initial ordering: the compiled program's own "
                         "(default) or all-forwards-then-all-backwards")
    sy.add_argument("--all-families", action="store_true",
                    help="search every family at this shape and rank "
                         "the results")
    sy.add_argument("--provenance", action="store_true",
                    help="print the winning mutation path")
    sy.add_argument("-o", "--output", default=None,
                    help="write the best schedule as replayable JSON")
    sy.add_argument("--replay", default=None, metavar="PATH",
                    help="re-simulate a saved schedule instead of "
                         "searching (exit 1 if its scores drifted)")
    sy.set_defaults(fn=cmd_synthesize)

    tr = sub.add_parser("train", help="real NumPy pipeline step + verify")
    _add_shape_args(tr)
    tr.set_defaults(fn=cmd_train)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
