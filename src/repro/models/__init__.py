"""Model specifications and cost models."""

from .costs import (
    A100_40G,
    A100_80G,
    BACKWARD_RATIO,
    V100_32G,
    DeviceModel,
    StageCosts,
    partition_layers,
    stage_costs,
)
from .spec import LayerKind, LayerSpec, ModelSpec
from .zoo import bert_64, gpt_128, tiny_model

__all__ = [
    "A100_40G",
    "A100_80G",
    "BACKWARD_RATIO",
    "V100_32G",
    "DeviceModel",
    "LayerKind",
    "LayerSpec",
    "ModelSpec",
    "StageCosts",
    "bert_64",
    "gpt_128",
    "partition_layers",
    "stage_costs",
    "tiny_model",
]
