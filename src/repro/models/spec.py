"""Transformer model specifications.

A :class:`ModelSpec` describes the architecture the paper trains
(BERT-style and GPT-style stacks) at the granularity the pipeline cares
about: a list of layer descriptors with parameter counts, FLOPs and
activation footprints.  The NumPy engine instantiates real (smaller)
models from the same spec type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigError


class LayerKind(enum.Enum):
    EMBEDDING = "embedding"
    TRANSFORMER = "transformer"
    HEAD = "head"           # final projection / LM head


@dataclass(frozen=True)
class LayerSpec:
    """One pipeline-partitionable layer."""

    kind: LayerKind
    hidden: int
    heads: int = 1
    ffn_mult: int = 4
    vocab: int = 0          # embedding / head layers only

    @property
    def param_count(self) -> int:
        h = self.hidden
        if self.kind is LayerKind.TRANSFORMER:
            # qkv + out proj: 4h^2; ffn: 2 * ffn_mult * h^2; 2 layernorms.
            return 4 * h * h + 2 * self.ffn_mult * h * h + 4 * h + (4 + self.ffn_mult) * h
        if self.kind in (LayerKind.EMBEDDING, LayerKind.HEAD):
            return self.vocab * h
        raise AssertionError(self.kind)

    def flops_per_token(self) -> float:
        """Forward FLOPs per token (matmul-dominated estimate)."""
        h = self.hidden
        if self.kind is LayerKind.TRANSFORMER:
            return 2.0 * (4 * h * h + 2 * self.ffn_mult * h * h)
        if self.kind in (LayerKind.EMBEDDING, LayerKind.HEAD):
            # lookup is cheap; head matmul is 2*v*h but we fold it into
            # the same estimate used for partitioning balance.
            return 2.0 * self.vocab * h if self.kind is LayerKind.HEAD else 0.0
        raise AssertionError(self.kind)

    def activation_bytes_per_token(self, bytes_per_el: int = 2) -> float:
        """Bytes of saved activations per token needed for backward.

        A standard transformer block retains roughly 17 hidden-sized
        intermediate tensors per token without recomputation (the
        Megatron estimate), scaled by the element size.
        """
        h = self.hidden
        if self.kind is LayerKind.TRANSFORMER:
            return 17.0 * h * bytes_per_el
        return 1.0 * h * bytes_per_el


@dataclass(frozen=True)
class ModelSpec:
    """A full model: named architecture plus its layer stack."""

    name: str
    hidden: int
    num_layers: int
    heads: int
    seq_len: int
    vocab: int = 50304
    ffn_mult: int = 4
    bytes_per_el: int = 4   # fp32 training (see models.costs presets)

    def __post_init__(self) -> None:
        if self.num_layers < 1 or self.hidden < 1 or self.seq_len < 1:
            raise ConfigError(f"degenerate model spec: {self}")
        if self.hidden % self.heads:
            raise ConfigError(
                f"hidden {self.hidden} not divisible by heads {self.heads}"
            )

    @property
    def layers(self) -> list[LayerSpec]:
        body = [
            LayerSpec(LayerKind.TRANSFORMER, self.hidden, self.heads, self.ffn_mult)
            for _ in range(self.num_layers)
        ]
        emb = LayerSpec(LayerKind.EMBEDDING, self.hidden, vocab=self.vocab)
        head = LayerSpec(LayerKind.HEAD, self.hidden, vocab=self.vocab)
        return [emb, *body, head]

    @property
    def param_count(self) -> int:
        return sum(layer.param_count for layer in self.layers)

    def flops_per_seq_forward(self) -> float:
        return self.seq_len * sum(l.flops_per_token() for l in self.layers)

    def activation_bytes_per_seq(self) -> float:
        return self.seq_len * sum(
            l.activation_bytes_per_token(self.bytes_per_el) for l in self.layers
        )

    def boundary_bytes(self, microbatch_size: int) -> float:
        """Bytes of one activation tensor crossing a stage boundary."""
        return microbatch_size * self.seq_len * self.hidden * self.bytes_per_el

    def describe(self) -> str:
        return (f"{self.name}: {self.num_layers}L h={self.hidden} "
                f"heads={self.heads} seq={self.seq_len} "
                f"params={self.param_count / 1e9:.2f}B")
