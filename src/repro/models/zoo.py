"""The concrete model configurations used in the paper's evaluation.

Section 5: "The BERT-style model consists of 64 layers, 64 attention
heads, and a hidden size of 2560, while the GPT-style model has 128
layers, 16 attention heads, and a hidden size of 1024."
"""

from __future__ import annotations

from .spec import ModelSpec


def bert_64() -> ModelSpec:
    """The paper's BERT-style evaluation model (~5 B parameters)."""
    return ModelSpec(
        name="bert-64L",
        hidden=2560,
        num_layers=64,
        heads=64,
        seq_len=512,
    )


def gpt_128() -> ModelSpec:
    """The paper's GPT-style evaluation model (~1.6 B parameters)."""
    return ModelSpec(
        name="gpt-128L",
        hidden=1024,
        num_layers=128,
        heads=16,
        seq_len=1024,
    )


def tiny_model(num_layers: int = 8, hidden: int = 32, heads: int = 4,
               seq_len: int = 8, vocab: int = 64) -> ModelSpec:
    """A model small enough for real NumPy execution in tests/examples."""
    return ModelSpec(
        name=f"tiny-{num_layers}L",
        hidden=hidden,
        num_layers=num_layers,
        heads=heads,
        seq_len=seq_len,
        vocab=vocab,
        bytes_per_el=8,  # engine trains in float64 for exact equivalence
    )
