"""Cost models: map a model spec + device to per-stage time and bytes.

The discrete-event simulator never sees FLOPs; it sees a
:class:`StageCosts` — forward/backward seconds for each pipeline stage
plus the bytes of the boundary tensors.  This module performs that
lowering, including the stage partitioning of the layer stack.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from ..errors import ConfigError
from .spec import LayerSpec, ModelSpec

#: Back-of-envelope backward/forward FLOP ratio used throughout the
#: paper's figures ("Back propagation is illustrated twice as long as
#: forward propagation according to the training experience").
BACKWARD_RATIO = 2.0


def partition_layers(spec: ModelSpec, num_stages: int) -> list[list[LayerSpec]]:
    """Split the layer stack into ``num_stages`` cost-balanced stages.

    Greedy prefix partitioning against the forward-FLOP cost model; each
    stage is a contiguous run of layers (pipeline parallelism requires
    contiguity).  Raises if there are fewer layers than stages.
    """
    layers = spec.layers
    if num_stages < 1:
        raise ConfigError(f"num_stages must be >= 1, got {num_stages}")
    if len(layers) < num_stages:
        raise ConfigError(
            f"{spec.name}: cannot split {len(layers)} layers into "
            f"{num_stages} stages"
        )
    costs = [l.flops_per_token() for l in layers]
    total = sum(costs)
    target = total / num_stages
    stages: list[list[LayerSpec]] = []
    acc: list[LayerSpec] = []
    acc_cost = 0.0
    remaining = num_stages
    for i, layer in enumerate(layers):
        acc.append(layer)
        acc_cost += costs[i]
        layers_left = len(layers) - i - 1
        # Close the stage when we've met the target, but never leave
        # fewer layers than stages still to fill.
        if remaining > 1 and (acc_cost >= target or layers_left == remaining - 1):
            stages.append(acc)
            acc, acc_cost = [], 0.0
            remaining -= 1
    stages.append(acc)
    assert len(stages) == num_stages
    assert sum(len(s) for s in stages) == len(layers)
    return stages


@dataclass(frozen=True)
class DeviceModel:
    """Compute characteristics of one accelerator."""

    name: str
    peak_flops: float          # FLOP/s at training precision
    mfu: float                 # achieved model FLOPs utilisation
    memory_bytes: int

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.mfu


# GPUs used in the paper's four clusters.  Peaks are fp32: the paper's
# measured sequences/second (0.8-1.8 on 8 GPUs for the 5B BERT) imply
# full-precision training — fp16 peaks would overshoot by ~15x.
A100_80G = DeviceModel("A100-80G", 19.5e12, 0.50, 80 * 2**30)
A100_40G = DeviceModel("A100-40G", 19.5e12, 0.50, 40 * 2**30)
V100_32G = DeviceModel("V100-32G", 15.7e12, 0.50, 32 * 2**30)


@dataclass(frozen=True)
class StageCosts:
    """Per-stage execution costs for a concrete (model, P, S, device) tuple.

    ``forward[s]`` / ``backward[s]`` are seconds for one micro-batch on
    stage ``s``; ``boundary_bytes`` is the activation tensor crossing
    each stage boundary (gradient tensors are the same size).
    """

    forward: tuple[float, ...]
    backward: tuple[float, ...]
    boundary_bytes: float
    weight_bytes: tuple[float, ...]
    activation_bytes: tuple[float, ...]

    @property
    def num_stages(self) -> int:
        return len(self.forward)

    @property
    def t_f_device(self) -> float:
        """Paper ``T_F``: whole-model forward time divided by P-worth.

        Computed as total forward over all stages; callers divide by P.
        """
        return sum(self.forward)

    @property
    def t_b_device(self) -> float:
        return sum(self.backward)


#: fp32 Adam: 4 B params + 4 B grads + 8 B optimizer moments.
BYTES_PER_PARAM = 16.0


@functools.lru_cache(maxsize=1024)
def stage_costs(
    spec: ModelSpec,
    num_stages: int,
    device: DeviceModel,
    microbatch_size: int = 1,
    balanced: bool = True,
    recompute: bool = False,
) -> StageCosts:
    """Lower a model spec to per-stage costs on a device.

    Memoized: every argument is a frozen (hashable) value and the
    result is immutable, so a sweep that crosses one model with many
    layouts and clusters lowers each distinct
    ``(model, stages, device, ...)`` tuple once.

    ``balanced=True`` (default) spreads total compute, weights and
    activations uniformly across stages — the idealisation the paper's
    ``T_F``/``T_B`` model assumes, and what a careful manual partition
    achieves when the layer count divides the stage count.  Pass
    ``balanced=False`` to use the greedy contiguous-layer partition and
    expose real imbalance (the ablation bench does).

    ``recompute=True`` models activation checkpointing (Chen et al.,
    cited in the paper's Sec. 6): stages retain only their boundary
    input, and the backward pass first re-runs the forward — so
    activation memory drops to one boundary tensor per live micro-batch
    while ``T_B`` grows from ``2 T_F`` to ``3 T_F``.
    """
    if microbatch_size < 1:
        raise ConfigError("microbatch_size must be >= 1")
    stages = partition_layers(spec, num_stages)
    tokens = spec.seq_len * microbatch_size
    bwd_ratio = BACKWARD_RATIO + (1.0 if recompute else 0.0)
    if balanced:
        flops = tokens * sum(l.flops_per_token() for l in spec.layers)
        seconds = flops / device.effective_flops / num_stages
        params = spec.param_count / num_stages
        act = tokens * sum(
            l.activation_bytes_per_token(spec.bytes_per_el)
            for l in spec.layers
        ) / num_stages
        if recompute:
            act = spec.boundary_bytes(microbatch_size)
        fwd = [seconds] * num_stages
        bwd = [seconds * bwd_ratio] * num_stages
        weights = [params * BYTES_PER_PARAM] * num_stages
        acts = [act] * num_stages
    else:
        fwd, bwd, weights, acts = [], [], [], []
        for stage in stages:
            flops = tokens * sum(l.flops_per_token() for l in stage)
            seconds = flops / device.effective_flops
            fwd.append(seconds)
            bwd.append(seconds * bwd_ratio)
            weights.append(sum(l.param_count for l in stage) * BYTES_PER_PARAM)
            if recompute:
                acts.append(spec.boundary_bytes(microbatch_size))
            else:
                acts.append(tokens * sum(
                    l.activation_bytes_per_token(spec.bytes_per_el)
                    for l in stage
                ))
    return StageCosts(
        forward=tuple(fwd),
        backward=tuple(bwd),
        boundary_bytes=spec.boundary_bytes(microbatch_size),
        weight_bytes=tuple(weights),
        activation_bytes=tuple(acts),
    )
