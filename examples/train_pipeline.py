"""Really *train* a model through the pipeline runtime.

Builds a small transformer from the same spec type as the paper's
models, compiles a Hanayo schedule to action lists, executes them on
one thread per simulated device with P2P channels, verifies the
gradients against a sequential run, then trains for a few optimizer
steps.

Run:  python examples/train_pipeline.py
"""

import numpy as np

from repro.config import PipelineConfig
from repro.engine import (
    Adam,
    PipelineTrainer,
    make_batch,
    sequential_step,
)
from repro.models import tiny_model


def main() -> None:
    spec = tiny_model(num_layers=8, hidden=32, heads=4, seq_len=12,
                      vocab=64)
    cfg = PipelineConfig(
        scheme="hanayo", num_devices=4, num_microbatches=4, num_waves=1
    )
    trainer = PipelineTrainer(spec, cfg, seed=0)
    print(f"model     : {spec.describe()}")
    print(f"pipeline  : {cfg.describe()} -> {trainer.schedule.num_stages} "
          f"stages")

    inputs, targets = make_batch(spec, cfg.num_microbatches,
                                 microbatch_size=2, seed=42)

    # 1. Correctness: the pipeline is a pure re-ordering of sequential
    #    training, so gradients must agree to float64 accuracy.
    result = trainer.train_step(inputs, targets)
    reference = sequential_step(spec, trainer.schedule.num_stages,
                                inputs, targets, seed=0)
    worst = max(
        float(np.max(np.abs(result.grads[k] - reference.grads[k])))
        for k in reference.grads
    )
    print(f"loss      : pipeline {result.loss:.6f} "
          f"/ sequential {reference.loss:.6f}")
    print(f"grad diff : {worst:.2e} (max abs over "
          f"{len(result.grads)} tensors)")
    print(f"messages  : {result.messages_sent} P2P tensors exchanged")

    # 2. Training: a few Adam steps through the full pipeline path.
    trainer = PipelineTrainer(spec, cfg, seed=0)
    optimizer = Adam(trainer.parameter_stages(), lr=3e-3)
    print("\ntraining:")
    for step in range(5):
        trainer.zero_grad()
        out = trainer.train_step(inputs, targets, optimizer=optimizer)
        print(f"  step {step}: loss = {out.loss:.4f}")


if __name__ == "__main__":
    main()
