"""Quickstart: build a Hanayo schedule, simulate it, read the numbers.

Run:  python examples/quickstart.py
"""

from repro import PipelineConfig, build_schedule, simulate
from repro.analysis import hanayo_bubble_ratio
from repro.config import CostConfig
from repro.runtime import AbstractCosts, bubble_stats
from repro.viz import render_gantt


def main() -> None:
    # A wave pipeline: 4 devices, 4 micro-batches, 2 waves -> 16 stages.
    cfg = PipelineConfig(
        scheme="hanayo", num_devices=4, num_microbatches=4, num_waves=2
    )
    schedule = build_schedule(cfg)
    print(f"schedule: {schedule.describe()}")

    # Simulate with the paper's abstract costs: T_B = 2 T_F, free comm.
    costs = AbstractCosts(CostConfig(), cfg.num_devices, schedule.num_stages)
    result = simulate(schedule, costs)
    stats = bubble_stats(result.timeline)
    print(f"makespan     : {result.makespan:.2f} (T_F units)")
    print(f"bubble ratio : {stats.bubble_ratio * 100:.1f}% measured, "
          f"{hanayo_bubble_ratio(4, 2) * 100:.1f}% from Eq. (1)")
    print()
    print(render_gantt(result.timeline, width=100))

    # Compare against the classic baselines on the same shape.
    print("\nversus the baselines:")
    for scheme in ("gpipe", "dapple", "chimera-wave"):
        other = build_schedule(cfg.with_scheme(scheme, num_waves=1))
        oc = AbstractCosts(CostConfig(), cfg.num_devices, other.num_stages)
        ratio = bubble_stats(simulate(other, oc).timeline).bubble_ratio
        print(f"  {scheme:13s} bubble = {ratio * 100:5.1f}%")


if __name__ == "__main__":
    main()
