"""Pick the best pipeline configuration for a model on a cluster.

Reproduces the paper's Sec. 5.3 workflow as a user-facing tool: given a
model, a cluster and a global batch, search (scheme, P, D, W), gate by
GPU memory, and print the ranked table with the recommendation.

Run:  python examples/cluster_advisor.py [PC|FC|TACC|TC] [devices]
"""

import sys

from repro.analysis import format_table, layouts_for, search_grid
from repro.cluster import get_cluster
from repro.models import bert_64


def main() -> None:
    cluster_name = sys.argv[1] if len(sys.argv) > 1 else "TACC"
    devices = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    total_batch = 2 * devices

    cluster = get_cluster(cluster_name, devices)
    model = bert_64()
    print(f"cluster : {cluster.describe()}")
    print(f"model   : {model.describe()}")
    print(f"batch   : {total_batch} sequences / iteration\n")

    rows = []
    best = None
    for scheme in ("gpipe", "dapple", "chimera-wave", "hanayo"):
        cells = search_grid(scheme, cluster, model,
                            layouts_for(devices), total_batch)
        for c in cells:
            if c.result.oom:
                rows.append([scheme, c.p, c.d, c.w, None, None, None])
                continue
            rows.append([
                scheme, c.p, c.d, c.w,
                f"{c.throughput:.2f}",
                f"{c.result.bubble_ratio * 100:.1f}%",
                f"{c.result.peak_mem_bytes / 2**30:.1f}",
            ])
            if best is None or c.throughput > best[1].throughput:
                best = (scheme, c)
    rows.sort(key=lambda r: float(r[4]) if r[4] else -1, reverse=True)
    print(format_table(
        ["scheme", "P", "D", "W", "seq/s", "bubble", "peak GiB"],
        rows[:14], title="ranked configurations (top 14)",
    ))

    scheme, cell = best
    print(f"\nrecommendation: {scheme} with P={cell.p}, D={cell.d}"
          + (f", W={cell.w}" if scheme == "hanayo" else "")
          + f"  ->  {cell.throughput:.2f} seq/s")


if __name__ == "__main__":
    main()
