"""Render every pipeline scheme's schedule as ASCII Gantt charts.

A text reproduction of the paper's Fig. 3 — useful for building
intuition about warmup shapes, wave turns and where the bubbles live.

Run:  python examples/schedule_gallery.py [devices] [microbatches]
"""

import sys

from repro.config import CostConfig, PipelineConfig
from repro.runtime import AbstractCosts, bubble_stats, simulate
from repro.schedules import build_schedule
from repro.viz import render_gantt

GALLERY = [
    ("gpipe", 1, "GPipe — all forwards, then all backwards"),
    ("dapple", 1, "DAPPLE / 1F1B — warmup, alternate, drain"),
    ("gems", 1, "GEMS — two directions, one micro-batch pair in flight"),
    ("chimera", 1, "Chimera — bidirectional, 2 model replicas"),
    ("chimera-wave", 1, "Chimera-wave — the Sec. 3.2 transform"),
    ("hanayo", 1, "Hanayo, one wave"),
    ("hanayo", 2, "Hanayo, two waves"),
]


def main() -> None:
    p = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    b = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    for scheme, w, caption in GALLERY:
        cfg = PipelineConfig(scheme=scheme, num_devices=p,
                             num_microbatches=b, num_waves=w)
        sched = build_schedule(cfg)
        res = simulate(
            sched, AbstractCosts(CostConfig(), p, sched.num_stages)
        )
        ratio = bubble_stats(res.timeline).bubble_ratio
        print(f"=== {caption} ===")
        print(f"    stages={sched.num_stages}  makespan={res.makespan:.1f}"
              f"  bubble={ratio * 100:.1f}%")
        print(render_gantt(res.timeline, width=96))
        print()


if __name__ == "__main__":
    main()
