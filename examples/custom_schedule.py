"""Author a custom pipeline schedule through the unified framework.

The paper's runtime is decoupled from the scheduling algorithm: any
placement + policy pair becomes an executable action list.  This
example builds a *user-defined* scheme — a "lazy wave" that prioritises
draining old micro-batches over chasing the wave front — validates it,
compiles it, checks it against a rendezvous backend, simulates it, and
finally executes it for real on the NumPy engine to prove gradients
still match.

Run:  python examples/custom_schedule.py
"""

import numpy as np

from repro.actions import compile_schedule, count_messages, validate_actions
from repro.config import CostConfig, PipelineConfig
from repro.engine import PipelineTrainer, make_batch, sequential_step
from repro.models import tiny_model
from repro.runtime import AbstractCosts, bubble_stats, simulate
from repro.schedules import (
    GreedyPolicy,
    Schedule,
    greedy_order,
    validate,
    wave_priority,
)
from repro.schedules.placement import SnakePlacement
from repro.types import OpKind
from repro.viz import render_gantt


def lazy_wave_priority(op):
    """Micro-batch FIFO everywhere — drain before exploring."""
    if op.kind is OpKind.BACKWARD:
        return (0, op.microbatch, op.stage)
    return (1, op.microbatch, -op.stage)


def build_custom(p: int, b: int) -> Schedule:
    cfg = PipelineConfig(scheme="hanayo", num_devices=p,
                         num_microbatches=b, num_waves=1)
    sched = Schedule.empty("lazy-wave", cfg, SnakePlacement(p, 1))
    policy = GreedyPolicy(priority=lazy_wave_priority,
                          open_cap=lambda d: 2 * p, cap_mode="chunks")
    return greedy_order(sched, policy)


def main() -> None:
    p = b = 4
    custom = build_custom(p, b)
    validate(custom)  # structural invariants hold
    print(f"custom schedule: {custom.describe()}")

    lists = compile_schedule(custom)
    validate_actions(lists, rendezvous=True)  # NCCL-safe with batching
    print(f"compiled: {count_messages(lists)} P2P messages, "
          "rendezvous-deadlock-free")

    res = simulate(custom, AbstractCosts(CostConfig(), p, custom.num_stages))
    print(f"bubble ratio: "
          f"{bubble_stats(res.timeline).bubble_ratio * 100:.1f}% "
          "(compare the stock wave policy below)")
    print(render_gantt(res.timeline, width=90))

    # Stock Hanayo policy on the same shape, for contrast.
    cfg = PipelineConfig(scheme="hanayo", num_devices=p,
                         num_microbatches=b, num_waves=1)
    stock = Schedule.empty("stock-wave", cfg, SnakePlacement(p, 1))
    greedy_order(stock, GreedyPolicy(priority=wave_priority,
                                     open_cap=lambda d: 2 * p,
                                     cap_mode="chunks"))
    res2 = simulate(stock, AbstractCosts(CostConfig(), p, stock.num_stages))
    print(f"stock wave policy bubble: "
          f"{bubble_stats(res2.timeline).bubble_ratio * 100:.1f}%")

    # The runtime executes *any* valid schedule with exact gradients.
    spec = tiny_model(num_layers=8, hidden=16, heads=2, seq_len=6, vocab=32)
    trainer = PipelineTrainer(spec, cfg, seed=1)
    trainer.use_schedule(custom)  # recompiles the program IR
    inputs, targets = make_batch(spec, b, seed=3)
    result = trainer.train_step(inputs, targets)
    ref = sequential_step(spec, custom.num_stages, inputs, targets, seed=1)
    worst = max(float(np.max(np.abs(result.grads[k] - ref.grads[k])))
                for k in ref.grads)
    print(f"\nexecuted on the NumPy engine: loss={result.loss:.6f}, "
          f"max grad diff vs sequential = {worst:.2e}")


if __name__ == "__main__":
    main()
